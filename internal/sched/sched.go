// Package sched is the multi-tenant control plane behind jungled: one
// long-lived daemon serving many concurrent simulation sessions over the
// jungle the paper's prototype dedicated to a single user ("The user must
// start this daemon on his or her machine before running any simulation,
// but it can be re-used for all simulations run" — §5; this package makes
// the re-use concurrent).
//
// A Scheduler wraps the shared core.Daemon and owns four concerns:
//
//   - Admission control: at most MaxLive sessions run at once; further
//     attaches either wait in a bounded queue or are rejected with a
//     structured retry-after hint (kernel.CodeBusy on the wire).
//   - Isolation: each admitted session is bound to a session id that
//     namespaces everything it touches — disjoint worker-id blocks (and
//     with them pool port names and peer-plane ports), capacity-ledger
//     entries, and checkpoint-store ownership tags.
//   - Placement: sessions resolve open WorkerSpecs through the
//     capacity-aware fair-share policy (core.SelectLeastLoaded), which
//     reads the same deployment ledger the daemon commits running
//     workers to — two sessions racing for one cluster cannot both land
//     on it when only one fits.
//   - Leases: clients renew their session with heartbeats; a session
//     idle past LeaseTTL is reaped — checkpointed through its evictor
//     into an opaque snapshot, its workers stopped and capacity
//     released — and parked as preempted. Re-attaching resumes it from
//     the snapshot bit-identically. Preempt/Reap are equally available
//     as explicit eviction primitives.
//
// The thin client side (gateway.go, client.go) serves many concurrent
// connections over the daemon's length-prefixed frame protocol; each
// connection is bound to the session namespace it attached.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"jungle/internal/core"
	"jungle/internal/core/kernel"
	"jungle/internal/trace"
)

// Errors.
var (
	// ErrUnknownSession is returned for operations on a session id that
	// was never attached (or was closed and forgotten).
	ErrUnknownSession = errors.New("sched: unknown session")
	// ErrSessionClosed is returned for operations on a closed session.
	ErrSessionClosed = errors.New("sched: session closed")
	// ErrSchedulerClosed is returned once the scheduler shut down.
	ErrSchedulerClosed = errors.New("sched: scheduler closed")
)

// BusyError is an admission-control rejection: the plane has no capacity
// for the session right now. It unwraps to kernel.ErrBusy, so callers
// branch with errors.Is; RetryAfter is the structured backoff hint that
// travels in the CodeBusy response payload.
type BusyError struct {
	RetryAfter time.Duration
	Queued     int // sessions already waiting for admission
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("sched: control plane full (%d queued); retry after %v", e.Queued, e.RetryAfter)
}

// Unwrap keys errors.Is(err, kernel.ErrBusy) / core.ErrBusy.
func (e *BusyError) Unwrap() error { return kernel.ErrBusy }

// RunFunc executes one unit of work for a session. The payload is the
// client's opaque request (jungled: a gob-encoded experiment workload);
// the returned bytes travel back verbatim. The handler uses the Session
// to create or resume its session-bound simulation.
type RunFunc func(ctx context.Context, sess *Session, payload []byte) ([]byte, error)

// Config tunes a Scheduler. Zero values select the defaults.
type Config struct {
	MaxLive    int             // concurrent running sessions (default 4)
	QueueCap   int             // admission queue bound (default 8)
	LeaseTTL   time.Duration   // idle-reap threshold (default 30s)
	RetryAfter time.Duration   // hint in busy rejections (default 500ms)
	Recorder   *trace.Recorder // per-session accounting sink (optional)
	Run        RunFunc         // run handler for gateway session_run ops
	// Now is the lease clock (default time.Now); tests inject one to
	// expire leases deterministically.
	Now func() time.Time
}

func (c Config) maxLive() int {
	if c.MaxLive > 0 {
		return c.MaxLive
	}
	return 4
}

func (c Config) queueCap() int {
	if c.QueueCap > 0 {
		return c.QueueCap
	}
	return 8
}

func (c Config) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return 30 * time.Second
}

func (c Config) retryAfter() time.Duration {
	if c.RetryAfter > 0 {
		return c.RetryAfter
	}
	return 500 * time.Millisecond
}

func (c Config) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

// Scheduler is the control plane: admission, placement, leases and
// eviction for every session sharing one daemon.
type Scheduler struct {
	daemon *core.Daemon
	cfg    Config

	mu       sync.Mutex
	sessions map[string]*Session
	live     int
	queue    []*waiter
	closed   bool
}

// waiter is one attach parked in the admission queue.
type waiter struct {
	sess  *Session
	ready chan error
}

// New creates a scheduler over a running daemon.
func New(d *core.Daemon, cfg Config) *Scheduler {
	return &Scheduler{daemon: d, cfg: cfg, sessions: make(map[string]*Session)}
}

// Daemon returns the shared daemon.
func (s *Scheduler) Daemon() *core.Daemon { return s.daemon }

// Recorder returns the accounting recorder (may be nil).
func (s *Scheduler) Recorder() *trace.Recorder { return s.cfg.Recorder }

// Attach admits a new session, re-attaches to a running one, or revives a
// preempted one. wait parks the attach in the bounded admission queue
// when the plane is full instead of rejecting; ctx bounds the park.
// resumed reports that the session came back from preemption and has a
// snapshot to resume from.
func (s *Scheduler) Attach(ctx context.Context, id string, wait bool) (sess *Session, resumed bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if id == "" {
		return nil, false, errors.New("sched: empty session id")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrSchedulerClosed
	}
	sess = s.sessions[id]
	if sess == nil {
		sess = newSession(s, id)
		s.sessions[id] = sess
	}
	switch sess.getState() {
	case StateRunning:
		sess.touch(s.cfg.now())
		s.mu.Unlock()
		return sess, false, nil
	case StateClosed:
		s.mu.Unlock()
		return nil, false, fmt.Errorf("%w: %q", ErrSessionClosed, id)
	case StateQueued:
		// Another attach is already parked for this session; fall through
		// to park this one too (both resolve when the session is admitted).
	}
	resumed = sess.hasSnapshot()
	if s.live < s.cfg.maxLive() {
		s.admitLocked(sess, resumed)
		s.mu.Unlock()
		return sess, resumed, nil
	}
	if !wait || len(s.queue) >= s.cfg.queueCap() {
		berr := &BusyError{RetryAfter: s.cfg.retryAfter(), Queued: len(s.queue)}
		s.mu.Unlock()
		return nil, false, berr
	}
	w := &waiter{sess: sess, ready: make(chan error, 1)}
	s.queue = append(s.queue, w)
	sess.setState(StateQueued)
	s.mu.Unlock()

	select {
	case err := <-w.ready:
		if err != nil {
			return nil, false, err
		}
		return sess, resumed, nil
	case <-ctx.Done():
		s.mu.Lock()
		found := false
		for i, q := range s.queue {
			if q == w {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				found = true
				break
			}
		}
		s.mu.Unlock()
		if !found {
			// The pump (or shutdown) already took this waiter off the
			// queue and resolved it; its outcome is on the channel. Honor
			// that outcome instead of the context — returning ctx.Err()
			// here would leak the admitted session's live slot.
			if err := <-w.ready; err != nil {
				return nil, false, err
			}
			return sess, resumed, nil
		}
		return nil, false, ctx.Err()
	}
}

// admitLocked promotes a session to running. Caller holds s.mu.
func (s *Scheduler) admitLocked(sess *Session, resumed bool) {
	s.live++
	sess.setState(StateRunning)
	sess.touch(s.cfg.now())
	if resumed {
		if rec := s.cfg.Recorder; rec != nil {
			rec.SessionResume(sess.id)
		}
	}
}

// pumpLocked admits queued sessions in FIFO order while live slots are
// free. A session can be parked more than once (two attaches racing while
// it was queued); only the first waiter claims a slot — later waiters for
// the same session find it already running and share it, so one session
// can never consume two live slots. Caller holds s.mu.
func (s *Scheduler) pumpLocked() {
	for i := 0; i < len(s.queue); {
		w := s.queue[i]
		st := w.sess.getState()
		switch {
		case st == StateRunning:
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			w.sess.touch(s.cfg.now())
			w.ready <- nil
		case st == StateClosed:
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			w.ready <- fmt.Errorf("%w: %q", ErrSessionClosed, w.sess.id)
		case s.live < s.cfg.maxLive():
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.admitLocked(w.sess, w.sess.hasSnapshot())
			w.ready <- nil
		default:
			// No slot for this waiter; keep its FIFO position and keep
			// scanning — waiters behind it may be duplicates of already
			// running (or closed) sessions that resolve without a slot.
			i++
		}
	}
}

// MaxLive returns the admission bound: how many sessions may run at
// once. Fan-out layers (internal/ensemble) size their concurrency and
// makespan models from it.
func (s *Scheduler) MaxLive() int { return s.cfg.maxLive() }

// AttachRetry attaches like Attach but absorbs busy rejections: on a
// *BusyError it sleeps the structured RetryAfter hint and tries again,
// up to attempts tries in total (attempts <= 1 behaves like Attach). It
// reports how many busy rejections it absorbed — ensemble runs account
// retries per member.
func (s *Scheduler) AttachRetry(ctx context.Context, id string, wait bool, attempts int) (sess *Session, resumed bool, retries int, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		sess, resumed, err = s.Attach(ctx, id, wait)
		var be *BusyError
		if err == nil || !errors.As(err, &be) || retries+1 >= attempts {
			return sess, resumed, retries, err
		}
		retries++
		select {
		case <-time.After(be.RetryAfter):
		case <-ctx.Done():
			return nil, false, retries, ctx.Err()
		}
	}
}

// Heartbeat renews a session's lease and returns its state.
func (s *Scheduler) Heartbeat(id string) (State, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return "", err
	}
	sess.touch(s.cfg.now())
	return sess.getState(), nil
}

// Status returns the control-plane view of one session.
func (s *Scheduler) Status(id string) (core.SessionStatusReply, error) {
	sess, err := s.lookup(id)
	if err != nil {
		return core.SessionStatusReply{}, err
	}
	s.mu.Lock()
	live, queued := s.live, len(s.queue)
	s.mu.Unlock()
	return core.SessionStatusReply{
		State:   string(sess.getState()),
		Workers: len(s.daemon.SessionWorkers(id)),
		Live:    live,
		Queued:  queued,
	}, nil
}

// Session returns a live handle for an attached session id.
func (s *Scheduler) Session(id string) (*Session, error) { return s.lookup(id) }

func (s *Scheduler) lookup(id string) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[id]
	if sess == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	return sess, nil
}

// Preempt evicts one running session: its live work is checkpointed into
// an opaque snapshot (through the evictor its run handler installed, or
// the generic whole-simulation manifest), its workers stop, its capacity
// and checkpoint-store blobs are released, and it parks as preempted. A
// later Attach resumes it from the snapshot. Preempt on a non-running
// session is a no-op.
func (s *Scheduler) Preempt(ctx context.Context, id string) error {
	sess, err := s.lookup(id)
	if err != nil {
		return err
	}
	return s.evict(ctx, sess)
}

// ReapIdle evicts every running session whose lease expired (no
// heartbeat for LeaseTTL). It returns the reaped session ids.
func (s *Scheduler) ReapIdle(ctx context.Context) ([]string, error) {
	now := s.cfg.now()
	ttl := s.cfg.leaseTTL()
	s.mu.Lock()
	var expired []*Session
	for _, sess := range s.sessions {
		if sess.getState() == StateRunning && now.Sub(sess.beat()) > ttl {
			expired = append(expired, sess)
		}
	}
	s.mu.Unlock()
	var reaped []string
	var firstErr error
	for _, sess := range expired {
		if err := s.evict(ctx, sess); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		reaped = append(reaped, sess.id)
	}
	return reaped, firstErr
}

// evict moves one session from running to preempted.
func (s *Scheduler) evict(ctx context.Context, sess *Session) error {
	if ctx == nil {
		ctx = context.Background()
	}
	sess.mu.Lock()
	if sess.state != StateRunning {
		sess.mu.Unlock()
		return nil
	}
	sim, evictor := sess.sim, sess.evictor
	sess.mu.Unlock()

	var snap []byte
	var err error
	switch {
	case evictor != nil:
		snap, err = evictor(ctx)
	case sim != nil:
		snap, err = genericSnapshot(ctx, sim)
	}
	if err != nil {
		return fmt.Errorf("sched: evict %q: %w", sess.id, err)
	}
	if sim != nil {
		sim.Stop()
	}
	// The snapshot inlines everything a resume needs; the daemon store's
	// per-session blobs are now redundant.
	s.daemon.DropSessionCheckpoints(sess.id)

	sess.mu.Lock()
	sess.sim = nil
	sess.evictor = nil
	if snap != nil {
		sess.snapshot = snap
	}
	sess.mu.Unlock()
	sess.setState(StatePreempted)
	if rec := s.cfg.Recorder; rec != nil {
		rec.SessionEviction(sess.id)
	}

	s.mu.Lock()
	s.live--
	s.pumpLocked()
	s.mu.Unlock()
	return nil
}

// Close ends one session for good: workers stop, capacity and checkpoint
// blobs release, the id is retired, and a queued session (if any) is
// admitted into the freed slot.
func (s *Scheduler) Close(id string) error {
	sess, err := s.lookup(id)
	if err != nil {
		return err
	}
	sess.mu.Lock()
	state := sess.state
	sim := sess.sim
	sess.sim = nil
	sess.evictor = nil
	sess.snapshot = nil
	sess.mu.Unlock()
	if state == StateClosed {
		return nil
	}
	if sim != nil {
		sim.Stop()
	}
	s.daemon.DropSessionCheckpoints(id)
	sess.setState(StateClosed)

	s.mu.Lock()
	if state == StateRunning {
		s.live--
	}
	s.pumpLocked()
	s.mu.Unlock()
	return nil
}

// Shutdown closes every session and refuses further attaches.
func (s *Scheduler) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	queue := s.queue
	s.queue = nil
	s.mu.Unlock()
	for _, w := range queue {
		w.ready <- ErrSchedulerClosed
	}
	for _, id := range ids {
		s.Close(id)
	}
}

// Run executes one unit of work for a session through the configured run
// handler and counts it against the session's lease.
func (s *Scheduler) Run(ctx context.Context, id string, payload []byte) ([]byte, error) {
	if s.cfg.Run == nil {
		return nil, errors.New("sched: no run handler configured")
	}
	sess, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	if st := sess.getState(); st != StateRunning {
		return nil, fmt.Errorf("sched: session %q is %s, not running", id, st)
	}
	sess.touch(s.cfg.now())
	out, err := s.cfg.Run(ctx, sess, payload)
	sess.touch(s.cfg.now())
	return out, err
}
