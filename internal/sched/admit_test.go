package sched

// Admission-fairness tests: ensemble fan-out parks many member attaches
// at once, so queued waiters must admit strictly FIFO as slots free, a
// session double-parked while queued must never consume two live slots,
// and an attach whose context cancels while the pump is admitting it
// must not leak the slot.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// parkWaiter spawns an attach with wait=true and blocks until it is
// parked in the admission queue (queue length reaches want).
func parkWaiter(t *testing.T, s *Scheduler, id string, want int, done chan<- string) {
	t.Helper()
	go func() {
		if _, _, err := s.Attach(context.Background(), id, true); err != nil {
			done <- fmt.Sprintf("error:%s:%v", id, err)
			return
		}
		done <- id
	}()
	deadline := time.After(5 * time.Second)
	for {
		s.mu.Lock()
		queued := len(s.queue)
		s.mu.Unlock()
		if queued >= want {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("waiter %s never queued (queue %d, want %d)", id, queued, want)
		case <-time.After(time.Millisecond):
		}
	}
}

// TestQueueAdmitOrderUnderBurst parks six member attaches behind a full
// single-slot plane and releases the slot six times: the members must
// admit in exactly the order they queued.
func TestQueueAdmitOrderUnderBurst(t *testing.T) {
	_, s := testPlane(t, Config{MaxLive: 1, QueueCap: 8})
	ctx := context.Background()

	if _, _, err := s.Attach(ctx, "holder", false); err != nil {
		t.Fatalf("holder attach: %v", err)
	}

	const n = 6
	admitted := make(chan string, n)
	for i := 0; i < n; i++ {
		parkWaiter(t, s, fmt.Sprintf("member-%d", i), i+1, admitted)
	}

	// Free the slot; each admitted member immediately closes, freeing the
	// slot for the next queued one.
	if err := s.Close("holder"); err != nil {
		t.Fatal(err)
	}
	var order []string
	for i := 0; i < n; i++ {
		select {
		case id := <-admitted:
			order = append(order, id)
			if err := s.Close(id); err != nil {
				t.Fatalf("close %s: %v", id, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of %d members admitted: %v", i, n, order)
		}
	}
	for i, id := range order {
		if want := fmt.Sprintf("member-%d", i); id != want {
			t.Fatalf("admission order %v not FIFO (position %d: got %s, want %s)", order, i, id, want)
		}
	}
}

// TestQueuedDoubleAttachSharesSlot: two attaches parked for the same
// session while it was queued must resolve into ONE admission consuming
// one live slot — a double admission would strand the plane's capacity
// accounting and starve later members.
func TestQueuedDoubleAttachSharesSlot(t *testing.T) {
	_, s := testPlane(t, Config{MaxLive: 1, QueueCap: 8})
	ctx := context.Background()

	if _, _, err := s.Attach(ctx, "holder", false); err != nil {
		t.Fatalf("holder attach: %v", err)
	}
	done := make(chan string, 2)
	parkWaiter(t, s, "twin", 1, done)
	parkWaiter(t, s, "twin", 2, done)

	if err := s.Close("holder"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case id := <-done:
			if id != "twin" {
				t.Fatalf("parked attach resolved with %q", id)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("second parked attach for the session never resolved")
		}
	}
	s.mu.Lock()
	live := s.live
	s.mu.Unlock()
	if live != 1 {
		t.Fatalf("one session consumed %d live slots", live)
	}
	// Closing the session once must free the whole plane.
	if err := s.Close("twin"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Attach(ctx, "next", false); err != nil {
		t.Fatalf("attach after close: %v (slot leaked?)", err)
	}
}

// TestAttachCancelDuringAdmission cancels a parked attach's context and
// frees a slot at the same moment. Whichever way the race resolves, the
// attach must return the admitted session — returning the context error
// after the pump admitted it would leak the live slot forever.
func TestAttachCancelDuringAdmission(t *testing.T) {
	_, s := testPlane(t, Config{MaxLive: 1, QueueCap: 8})

	if _, _, err := s.Attach(context.Background(), "holder", false); err != nil {
		t.Fatalf("holder attach: %v", err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var sess *Session
	var aerr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess, _, aerr = s.Attach(cctx, "racer", true)
	}()
	deadline := time.After(5 * time.Second)
	for {
		s.mu.Lock()
		queued := len(s.queue)
		s.mu.Unlock()
		if queued == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("racer never queued")
		case <-time.After(time.Millisecond):
		}
	}

	// Cancel, then admit under the scheduler lock before the attach
	// goroutine can observe the cancellation: the waiter leaves the queue
	// with its admission already decided.
	cancel()
	s.mu.Lock()
	s.live--
	s.pumpLocked()
	s.mu.Unlock()
	wg.Wait()

	if aerr != nil {
		t.Fatalf("attach returned %v after the pump admitted it", aerr)
	}
	if sess == nil || sess.getState() != StateRunning {
		t.Fatalf("admitted session not running: %v", sess)
	}
	s.mu.Lock()
	live := s.live
	s.mu.Unlock()
	if live != 1 {
		t.Fatalf("live = %d after cancel/admit race, want 1", live)
	}
}

// TestSchedulerAttachRetry: a busy plane rejects, the retry loop absorbs
// the rejection with the structured hint, and the attach lands once the
// slot frees.
func TestSchedulerAttachRetry(t *testing.T) {
	_, s := testPlane(t, Config{MaxLive: 1, RetryAfter: 5 * time.Millisecond})
	ctx := context.Background()

	if _, _, err := s.Attach(ctx, "holder", false); err != nil {
		t.Fatalf("holder attach: %v", err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		s.Close("holder")
	}()
	sess, _, retries, err := s.AttachRetry(ctx, "member", false, 100)
	if err != nil {
		t.Fatalf("AttachRetry: %v", err)
	}
	if sess == nil || retries == 0 {
		t.Fatalf("AttachRetry absorbed %d rejections (want >0) sess=%v", retries, sess)
	}

	// Exhausted attempts surface the busy error ("member" still holds the
	// plane's only slot).
	_, _, retries, err = s.AttachRetry(ctx, "late", false, 3)
	if err == nil {
		t.Fatal("AttachRetry succeeded past MaxLive with no slot freed")
	}
	if retries != 2 {
		t.Fatalf("AttachRetry absorbed %d rejections before giving up, want 2", retries)
	}
}
