package sched

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"jungle/internal/core"
	"jungle/internal/core/kernel"
)

// Client is the thin control-plane client (amuse-run -attach): it speaks
// the gateway's framed envelope protocol over any stream. A client is
// bound to at most one session at a time (the gateway enforces the same
// binding on its side of the connection). Not safe for concurrent use.
type Client struct {
	conn    io.ReadWriteCloser
	r       *bufio.Reader
	w       *bufio.Writer
	session string
}

// Dial connects to a jungled gateway address (host:port TCP).
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sched: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (tests pass an in-memory
// pipe).
func NewClient(conn io.ReadWriteCloser) *Client {
	return &Client{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 1<<20),
		w:    bufio.NewWriterSize(conn, 1<<20),
	}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// Session returns the session id this client is attached to ("" before
// Attach).
func (c *Client) Session() string { return c.session }

// do performs one request/response round trip.
func (c *Client) do(method string, args, reply any) error {
	body, err := gobEncode(args)
	if err != nil {
		return fmt.Errorf("sched: encode %s args: %w", method, err)
	}
	out, err := gobEncode(Envelope{Method: method, Body: body})
	if err != nil {
		return fmt.Errorf("sched: encode %s envelope: %w", method, err)
	}
	if err := writeFrame(c.w, out); err != nil {
		return fmt.Errorf("sched: send %s: %w", method, err)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return fmt.Errorf("sched: %s reply: %w", method, err)
	}
	payload := make([]byte, binary.LittleEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(c.r, payload); err != nil {
		return fmt.Errorf("sched: %s reply: %w", method, err)
	}
	var rf ReplyFrame
	if err := gobDecode(payload, &rf); err != nil {
		return fmt.Errorf("sched: decode %s reply: %w", method, err)
	}
	if rf.Code != 0 {
		return c.replyErr(method, rf)
	}
	if reply != nil {
		if err := gobDecode(rf.Body, reply); err != nil {
			return fmt.Errorf("sched: decode %s result: %w", method, err)
		}
	}
	return nil
}

// replyErr rebuilds a client-side error from a failure frame: busy
// rejections come back as *BusyError with the structured hint, everything
// else as the taxonomy sentinel wrapped with the server's message.
func (c *Client) replyErr(method string, rf ReplyFrame) error {
	code := kernel.Code(rf.Code)
	if code == kernel.CodeBusy {
		var busy core.SessionBusy
		if err := gobDecode(rf.Body, &busy); err == nil {
			return &BusyError{
				RetryAfter: time.Duration(busy.RetryAfterMs) * time.Millisecond,
				Queued:     busy.Queued,
			}
		}
	}
	return fmt.Errorf("sched: %s: %s: %w", method, rf.Err, code.Sentinel())
}

// Attach admits (or re-attaches to) a session. wait parks in the
// admission queue when the plane is full; otherwise a full plane returns
// a *BusyError carrying the retry-after hint.
func (c *Client) Attach(session string, wait bool) (core.SessionAttachReply, error) {
	var rep core.SessionAttachReply
	err := c.do(core.MethodSessionAttach, core.SessionAttachArgs{Session: session, Wait: wait}, &rep)
	if err == nil {
		c.session = rep.Session
	}
	return rep, err
}

// AttachRetry attaches with busy-backoff: on a BusyError it sleeps the
// server's retry-after hint and tries again, up to attempts tries.
func (c *Client) AttachRetry(session string, attempts int) (core.SessionAttachReply, error) {
	var rep core.SessionAttachReply
	var err error
	for i := 0; i < attempts; i++ {
		rep, err = c.Attach(session, false)
		var be *BusyError
		if err == nil || !asBusy(err, &be) {
			return rep, err
		}
		time.Sleep(be.RetryAfter)
	}
	return rep, err
}

func asBusy(err error, out **BusyError) bool {
	be, ok := err.(*BusyError)
	if ok {
		*out = be
	}
	return ok
}

// Heartbeat renews the attached session's lease.
func (c *Client) Heartbeat() (string, error) {
	var rep core.SessionHeartbeatReply
	err := c.do(core.MethodSessionHeartbeat, core.SessionHeartbeatArgs{Session: c.session}, &rep)
	return rep.State, err
}

// Run submits one opaque unit of work to the attached session and returns
// the handler's result.
func (c *Client) Run(payload []byte) ([]byte, error) {
	var rep core.SessionRunReply
	err := c.do(core.MethodSessionRun, core.SessionRunArgs{Session: c.session, Payload: payload}, &rep)
	return rep.Payload, err
}

// Status returns the control-plane view of the attached session.
func (c *Client) Status() (core.SessionStatusReply, error) {
	var rep core.SessionStatusReply
	err := c.do(core.MethodSessionStatus, core.SessionStatusArgs{Session: c.session}, &rep)
	return rep, err
}

// Detach unbinds the client; close also ends the session and releases
// its capacity.
func (c *Client) Detach(close bool) (string, error) {
	var rep core.SessionDetachReply
	err := c.do(core.MethodSessionDetach, core.SessionDetachArgs{Session: c.session, Close: close}, &rep)
	if err == nil {
		c.session = ""
	}
	return rep.State, err
}
