package sched

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"jungle/internal/core"
	"jungle/internal/core/kernel"
)

// The gateway wire protocol: the daemon channel's length-prefixed framing
// (4-byte little-endian length + payload) carrying gob-encoded envelopes.
// Frames that do not decode as envelopes are echoed back verbatim — the
// §5 loopback measurement (cmd/jungled -selftest, exp.RunE7) keeps
// working against a gateway-serving daemon.

// Envelope is one client request frame.
type Envelope struct {
	Method string // core.MethodSession*
	Body   []byte // gob-encoded args struct
}

// ReplyFrame is one gateway response frame. Code is the wire-error
// taxonomy byte (0 = success); CodeBusy replies carry a gob-encoded
// core.SessionBusy in Body.
type ReplyFrame struct {
	Code byte
	Err  string
	Body []byte
}

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(b []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

// Gateway serves control-plane connections for a scheduler. Every
// accepted connection is handled concurrently and is bound to the session
// namespace it attaches: after session_attach, the connection's
// operations address that session and no other.
type Gateway struct {
	Sched *Scheduler
	// Ctx bounds the work the gateway performs on behalf of clients
	// (default context.Background()).
	Ctx context.Context
}

func (g *Gateway) ctx() context.Context {
	if g.Ctx != nil {
		return g.Ctx
	}
	return context.Background()
}

// Serve accepts connections until the listener closes.
func (g *Gateway) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			g.ServeConn(conn)
		}()
	}
}

// ServeConn serves one client connection until EOF. Safe to call from
// many goroutines with distinct connections.
func (g *Gateway) ServeConn(conn io.ReadWriter) error {
	r := bufio.NewReaderSize(conn, 1<<20)
	w := bufio.NewWriterSize(conn, 1<<20)
	bound := "" // session this connection attached
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		n := int(binary.LittleEndian.Uint32(hdr[:]))
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return err
		}
		var env Envelope
		if err := gobDecode(payload, &env); err != nil || !strings.HasPrefix(env.Method, "session_") {
			// Not a control-plane frame: echo it (E7 loopback compat).
			if err := writeFrame(w, payload); err != nil {
				return err
			}
			continue
		}
		start := time.Now()
		reply := g.dispatch(&bound, env)
		// Control ops run on the wall clock (the gateway fronts a real
		// listener), so their latency histograms are wall time — model
		// "control" keeps them apart from the virtual-time call rows.
		if rec := g.Sched.Recorder(); rec != nil {
			if reply.Code != 0 {
				rec.RecordCallError(bound, "control", env.Method)
			} else {
				rec.RecordCall(bound, "control", env.Method, time.Since(start), 0)
			}
		}
		out, err := gobEncode(reply)
		if err != nil {
			return err
		}
		if err := writeFrame(w, out); err != nil {
			return err
		}
	}
}

func writeFrame(w *bufio.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

// dispatch executes one control-plane op for a connection bound (or
// binding) to a session.
func (g *Gateway) dispatch(bound *string, env Envelope) ReplyFrame {
	switch env.Method {
	case core.MethodSessionAttach:
		var args core.SessionAttachArgs
		if err := gobDecode(env.Body, &args); err != nil {
			return errReply(fmt.Errorf("%w: bad attach args: %v", kernel.ErrBadMethod, err))
		}
		sess, resumed, err := g.Sched.Attach(g.ctx(), args.Session, args.Wait)
		if err != nil {
			return errReply(err)
		}
		*bound = sess.ID()
		return okReply(core.SessionAttachReply{
			Session: sess.ID(), State: string(sess.State()), Resumed: resumed,
		})
	case core.MethodSessionHeartbeat:
		var args core.SessionHeartbeatArgs
		if err := gobDecode(env.Body, &args); err != nil {
			return errReply(fmt.Errorf("%w: bad heartbeat args: %v", kernel.ErrBadMethod, err))
		}
		id, err := g.sessionFor(*bound, args.Session)
		if err != nil {
			return errReply(err)
		}
		st, err := g.Sched.Heartbeat(id)
		if err != nil {
			return errReply(err)
		}
		return okReply(core.SessionHeartbeatReply{State: string(st)})
	case core.MethodSessionRun:
		var args core.SessionRunArgs
		if err := gobDecode(env.Body, &args); err != nil {
			return errReply(fmt.Errorf("%w: bad run args: %v", kernel.ErrBadMethod, err))
		}
		id, err := g.sessionFor(*bound, args.Session)
		if err != nil {
			return errReply(err)
		}
		out, err := g.Sched.Run(g.ctx(), id, args.Payload)
		if err != nil {
			return errReply(err)
		}
		return okReply(core.SessionRunReply{Payload: out})
	case core.MethodSessionStatus:
		var args core.SessionStatusArgs
		if err := gobDecode(env.Body, &args); err != nil {
			return errReply(fmt.Errorf("%w: bad status args: %v", kernel.ErrBadMethod, err))
		}
		id, err := g.sessionFor(*bound, args.Session)
		if err != nil {
			return errReply(err)
		}
		st, err := g.Sched.Status(id)
		if err != nil {
			return errReply(err)
		}
		return okReply(st)
	case core.MethodSessionDetach:
		var args core.SessionDetachArgs
		if err := gobDecode(env.Body, &args); err != nil {
			return errReply(fmt.Errorf("%w: bad detach args: %v", kernel.ErrBadMethod, err))
		}
		id, err := g.sessionFor(*bound, args.Session)
		if err != nil {
			return errReply(err)
		}
		if args.Close {
			if err := g.Sched.Close(id); err != nil {
				return errReply(err)
			}
		}
		st := StatePreempted
		if sess, err := g.Sched.Session(id); err == nil {
			st = sess.State()
		}
		*bound = ""
		return okReply(core.SessionDetachReply{State: string(st)})
	default:
		return errReply(fmt.Errorf("%w: %q", kernel.ErrNoSuchMethod, env.Method))
	}
}

// sessionFor resolves the session an op addresses: the connection's bound
// session by default; an explicit id must match the binding — one
// connection, one session namespace.
func (g *Gateway) sessionFor(bound, explicit string) (string, error) {
	switch {
	case explicit == "" && bound == "":
		return "", errors.New("sched: connection not attached to a session")
	case explicit == "":
		return bound, nil
	case bound != "" && explicit != bound:
		return "", fmt.Errorf("sched: connection is bound to session %q, not %q", bound, explicit)
	default:
		return explicit, nil
	}
}

// okReply encodes a success reply body.
func okReply(body any) ReplyFrame {
	b, err := gobEncode(body)
	if err != nil {
		return errReply(err)
	}
	return ReplyFrame{Body: b}
}

// errReply classifies an error through the wire taxonomy. BusyErrors
// carry their structured retry-after hint as a SessionBusy payload.
func errReply(err error) ReplyFrame {
	code := kernel.ClassifyErr(err)
	rf := ReplyFrame{Code: byte(code), Err: err.Error()}
	var be *BusyError
	if errors.As(err, &be) {
		if b, encErr := gobEncode(core.SessionBusy{
			RetryAfterMs: be.RetryAfter.Milliseconds(), Queued: be.Queued,
		}); encErr == nil {
			rf.Body = b
		}
	}
	return rf
}
