package climate

import (
	"math"
)

// Physical constants of the energy-balance formulation (W/m², °C).
const (
	solarConstant = 1361.0
	olrA          = 203.3 // linearized outgoing longwave: A + B·T
	olrB          = 2.09
	exchangeCoeff = 15.0 // surface-atmosphere heat exchange (W/m²/°C)
	freezePoint   = -2.0 // seawater freezing (°C)
)

// FlopsPerCellStep is the accounted cost of one cell update.
const FlopsPerCellStep = 40

// Fluxes is the state exchanged through the coupler at the
// surface-atmosphere interface, on the coupler's grid.
type Fluxes struct {
	// SurfaceTemp is the blended surface temperature seen by the
	// atmosphere.
	SurfaceTemp *Grid
	// AirTemp is the atmospheric temperature seen by the surfaces.
	AirTemp *Grid
	// IceFraction raises the albedo where sea ice exists.
	IceFraction *Grid
}

// Component is one model of the earth system (Fig. 4's boxes).
type Component interface {
	// Name identifies the component ("atm", "ocn", "lnd", "ice").
	Name() string
	// Active reports whether this is a computing variant (vs data).
	Active() bool
	// Step advances the component by dt days, given the current coupler
	// fluxes; it returns the accounted flop count.
	Step(dt float64, f *Fluxes) float64
	// Temp exposes the component's temperature grid.
	Temp() *Grid
}

// insolation returns annual-mean solar flux at latitude φ:
// S0/4 · (1 − 0.48·P₂(sin φ)).
func insolation(lat float64) float64 {
	s := math.Sin(lat)
	p2 := 0.5 * (3*s*s - 1)
	return solarConstant / 4 * (1 - 0.48*p2)
}

// Atmosphere is the active atmosphere model (CAM-equivalent): diffusive
// heat transport plus radiative balance and surface exchange.
type Atmosphere struct {
	T       *Grid
	lap     *Grid
	Diff    float64 // diffusivity
	HeatCap float64 // column heat capacity (W·day/m²/°C)
	variant string
}

// NewAtmosphere returns an active atmosphere on an nlon×nlat grid. variant
// names the kernel generation ("cam4", "cam5") — different diffusivity, as
// the paper notes different model versions exist.
func NewAtmosphere(nlon, nlat int, variant string) *Atmosphere {
	diff := 0.6
	if variant == "cam5" {
		diff = 0.75 // stronger transport
	}
	return &Atmosphere{
		T: NewGrid(nlon, nlat, 5), lap: NewGrid(nlon, nlat, 0),
		Diff: diff, HeatCap: 10, variant: variant,
	}
}

// Name implements Component.
func (a *Atmosphere) Name() string { return "atm" }

// Active implements Component.
func (a *Atmosphere) Active() bool { return true }

// Temp implements Component.
func (a *Atmosphere) Temp() *Grid { return a.T }

// Step implements Component.
func (a *Atmosphere) Step(dt float64, f *Fluxes) float64 {
	a.T.Laplacian(a.lap)
	for j := 0; j < a.T.NLat; j++ {
		for i := 0; i < a.T.NLon; i++ {
			t := a.T.At(i, j)
			sfc := f.SurfaceTemp.At(i, j)
			// Shortwave absorbed aloft is small; most heating comes via
			// the surface exchange and OLR loss at the top. The diffusion
			// scale keeps dt·k/C < 0.5 (explicit stability).
			dq := a.Diff*a.lap.At(i, j)*5 +
				exchangeCoeff*(sfc-t) -
				(olrA + olrB*t) + 180 // 180: mean back-radiation closure
			a.T.Set(i, j, t+dt*dq/a.HeatCap)
		}
	}
	return FlopsPerCellStep * float64(len(a.T.Cells))
}

// Ocean is the active ocean model (POP-equivalent): large heat capacity,
// slow diffusive transport, ice-albedo coupling.
type Ocean struct {
	T       *Grid
	lap     *Grid
	Diff    float64
	HeatCap float64
}

// NewOcean returns an active ocean on an nlon×nlat grid (typically finer
// than the atmosphere, exercising the coupler's regridding).
func NewOcean(nlon, nlat int) *Ocean {
	return &Ocean{
		T: NewGrid(nlon, nlat, 8), lap: NewGrid(nlon, nlat, 0),
		Diff: 0.2, HeatCap: 200,
	}
}

// Name implements Component.
func (o *Ocean) Name() string { return "ocn" }

// Active implements Component.
func (o *Ocean) Active() bool { return true }

// Temp implements Component.
func (o *Ocean) Temp() *Grid { return o.T }

// Step implements Component.
func (o *Ocean) Step(dt float64, f *Fluxes) float64 {
	o.T.Laplacian(o.lap)
	for j := 0; j < o.T.NLat; j++ {
		lat := o.T.Lat(j)
		for i := 0; i < o.T.NLon; i++ {
			t := o.T.At(i, j)
			air := f.AirTemp.At(i*f.AirTemp.NLon/o.T.NLon, j*f.AirTemp.NLat/o.T.NLat)
			albedo := 0.1
			if f.IceFraction != nil {
				ice := f.IceFraction.At(i*f.IceFraction.NLon/o.T.NLon, j*f.IceFraction.NLat/o.T.NLat)
				albedo = 0.1 + 0.5*ice // ice-albedo feedback
			}
			dq := o.Diff*o.lap.At(i, j)*5 +
				insolation(lat)*(1-albedo)*0.7 -
				exchangeCoeff*(t-air) - 150 // 150: closure for absorbed fraction
			o.T.Set(i, j, t+dt*dq/o.HeatCap)
		}
	}
	return FlopsPerCellStep * float64(len(o.T.Cells))
}

// Land is the active land model (CLM-equivalent): small heat capacity,
// no lateral transport.
type Land struct {
	T       *Grid
	HeatCap float64
}

// NewLand returns an active land component.
func NewLand(nlon, nlat int) *Land {
	return &Land{T: NewGrid(nlon, nlat, 10), HeatCap: 3}
}

// Name implements Component.
func (l *Land) Name() string { return "lnd" }

// Active implements Component.
func (l *Land) Active() bool { return true }

// Temp implements Component.
func (l *Land) Temp() *Grid { return l.T }

// Step implements Component.
func (l *Land) Step(dt float64, f *Fluxes) float64 {
	for j := 0; j < l.T.NLat; j++ {
		lat := l.T.Lat(j)
		for i := 0; i < l.T.NLon; i++ {
			t := l.T.At(i, j)
			air := f.AirTemp.At(i*f.AirTemp.NLon/l.T.NLon, j*f.AirTemp.NLat/l.T.NLat)
			dq := insolation(lat)*(1-0.25)*0.7 - exchangeCoeff*(t-air) - 150
			l.T.Set(i, j, t+dt*dq/l.HeatCap)
		}
	}
	return FlopsPerCellStep * float64(len(l.T.Cells))
}

// SeaIce is the active sea-ice model (CICE-equivalent): thermodynamic ice
// fraction driven by ocean temperature.
type SeaIce struct {
	Fraction *Grid
	growth   float64
}

// NewSeaIce returns an active sea-ice component.
func NewSeaIce(nlon, nlat int) *SeaIce {
	return &SeaIce{Fraction: NewGrid(nlon, nlat, 0), growth: 0.2}
}

// Name implements Component.
func (s *SeaIce) Name() string { return "ice" }

// Active implements Component.
func (s *SeaIce) Active() bool { return true }

// Temp implements Component — for sea ice the "temperature" grid is the
// ice fraction (what the coupler exchanges).
func (s *SeaIce) Temp() *Grid { return s.Fraction }

// Step implements Component: ice grows where the (regridded) surface
// temperature is below freezing and melts above it.
func (s *SeaIce) Step(dt float64, f *Fluxes) float64 {
	for j := 0; j < s.Fraction.NLat; j++ {
		for i := 0; i < s.Fraction.NLon; i++ {
			sfc := f.SurfaceTemp.At(i*f.SurfaceTemp.NLon/s.Fraction.NLon, j*f.SurfaceTemp.NLat/s.Fraction.NLat)
			frac := s.Fraction.At(i, j)
			if sfc < freezePoint {
				frac += s.growth * dt * (freezePoint - sfc) / 10
			} else {
				frac -= s.growth * dt * (sfc - freezePoint) / 5
			}
			s.Fraction.Set(i, j, clamp01(frac))
		}
	}
	return FlopsPerCellStep * float64(len(s.Fraction.Cells))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// DataComponent replays a fixed climatology instead of computing — CESM's
// "data implementations ... simply replay precomputed data" (§4.2). It
// satisfies Component for any position in the coupling.
type DataComponent struct {
	name string
	clim *Grid
}

// NewDataComponent wraps a climatology grid as a data model.
func NewDataComponent(name string, climatology *Grid) *DataComponent {
	c := *climatology
	c.Cells = append([]float64(nil), climatology.Cells...)
	return &DataComponent{name: name, clim: &c}
}

// Name implements Component.
func (d *DataComponent) Name() string { return d.name }

// Active implements Component.
func (d *DataComponent) Active() bool { return false }

// Temp implements Component.
func (d *DataComponent) Temp() *Grid { return d.clim }

// Step implements Component: data models do (almost) no work.
func (d *DataComponent) Step(dt float64, f *Fluxes) float64 {
	return float64(len(d.clim.Cells)) // copy-out cost only
}
