package climate

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"jungle/internal/mpisim"
	"jungle/internal/vtime"
)

// CESM assembles the coupled earth system of Fig. 4: four components
// around a central coupler. Unlike AMUSE's Python coupler, CESM's CPL is a
// parallel component that itself gets compute resources — Run models that
// by assigning every component (and the coupler) a node set and accounting
// their compute in virtual time, concurrently for partitioned layouts and
// serialized for shared nodes.
type CESM struct {
	Atm, Ocn, Lnd, Ice Component

	// CouplingInterval is the coupler exchange period in days.
	CouplingInterval float64
	// StepsPerInterval is how many component steps run between exchanges.
	StepsPerInterval int

	fluxes *Fluxes
	time   float64 // days
	flops  map[string]float64
}

// Errors.
var (
	ErrMissingComponent = errors.New("climate: all four components are required")
	ErrBadLayout        = errors.New("climate: layout missing a component")
)

// New assembles a CESM run. The fluxes live on the atmosphere grid (the
// coupler's exchange grid, as in CESM).
func New(atm, ocn, lnd, ice Component) (*CESM, error) {
	if atm == nil || ocn == nil || lnd == nil || ice == nil {
		return nil, ErrMissingComponent
	}
	ag := atm.Temp()
	f := &Fluxes{
		SurfaceTemp: NewGrid(ag.NLon, ag.NLat, 8),
		AirTemp:     NewGrid(ag.NLon, ag.NLat, 5),
		IceFraction: NewGrid(ag.NLon, ag.NLat, 0),
	}
	return &CESM{
		Atm: atm, Ocn: ocn, Lnd: lnd, Ice: ice,
		CouplingInterval: 1, StepsPerInterval: 4,
		fluxes: f, flops: make(map[string]float64),
	}, nil
}

// Time returns the model time in days.
func (m *CESM) Time() float64 { return m.time }

// Flops returns accumulated flops per component (including "cpl").
func (m *CESM) Flops() map[string]float64 {
	out := make(map[string]float64, len(m.flops))
	for k, v := range m.flops {
		out[k] = v
	}
	return out
}

// GlobalMeanTemp returns the area-weighted mean surface temperature (the
// headline diagnostic).
func (m *CESM) GlobalMeanTemp() float64 {
	return m.fluxes.SurfaceTemp.Mean()
}

// IceArea returns the mean ice fraction.
func (m *CESM) IceArea() float64 { return m.Ice.Temp().Mean() }

// couple performs one CPL exchange: regrid component states onto the
// exchange grid and blend the surface (the coupler's compute, accounted
// under "cpl").
func (m *CESM) couple() (float64, error) {
	ag := m.fluxes.AirTemp
	if err := Regrid(m.Atm.Temp(), ag); err != nil {
		return 0, fmt.Errorf("atm regrid: %w", err)
	}
	ocn := NewGrid(ag.NLon, ag.NLat, 0)
	if err := Regrid(m.Ocn.Temp(), ocn); err != nil {
		return 0, fmt.Errorf("ocn regrid: %w", err)
	}
	lnd := NewGrid(ag.NLon, ag.NLat, 0)
	if err := Regrid(m.Lnd.Temp(), lnd); err != nil {
		return 0, fmt.Errorf("lnd regrid: %w", err)
	}
	if err := Regrid(m.Ice.Temp(), m.fluxes.IceFraction); err != nil {
		return 0, fmt.Errorf("ice regrid: %w", err)
	}
	// Blend surface: 70% ocean, 30% land (fixed land mask fraction).
	for idx := range m.fluxes.SurfaceTemp.Cells {
		m.fluxes.SurfaceTemp.Cells[idx] = 0.7*ocn.Cells[idx] + 0.3*lnd.Cells[idx]
	}
	return 10 * float64(len(ag.Cells)), nil // regrid + blend cost
}

// Step advances the system by one coupling interval: the coupler
// exchanges, then every component steps StepsPerInterval times.
func (m *CESM) Step() error {
	cplFlops, err := m.couple()
	if err != nil {
		return err
	}
	m.flops["cpl"] += cplFlops
	dt := m.CouplingInterval / float64(m.StepsPerInterval)
	for s := 0; s < m.StepsPerInterval; s++ {
		for _, c := range []Component{m.Atm, m.Ocn, m.Lnd, m.Ice} {
			m.flops[c.Name()] += c.Step(dt, m.fluxes)
		}
	}
	m.time += m.CouplingInterval
	return nil
}

// Run advances the model by the given number of days.
func (m *CESM) Run(days float64) error {
	for m.time < days-1e-9 {
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Layout assigns components to node sets — CESM's configuration problem:
// "the compute nodes can either be partitioned, each running (part of) one
// model, shared, each running (part of) multiple models, or use a
// combination" (§4.2). Components on disjoint node sets run concurrently in
// virtual time; components sharing nodes serialize.
type Layout struct {
	// Nodes maps component name ("atm","ocn","lnd","ice","cpl") to the
	// host names it occupies.
	Nodes map[string][]string
	// Device is the per-node compute model.
	Device *vtime.Device
}

// Validate checks all five entries exist.
func (l *Layout) Validate() error {
	for _, name := range []string{"atm", "ocn", "lnd", "ice", "cpl"} {
		if len(l.Nodes[name]) == 0 {
			return fmt.Errorf("%w: %q", ErrBadLayout, name)
		}
	}
	if l.Device == nil {
		return errors.New("climate: layout needs a device model")
	}
	return nil
}

// RunTimed advances the model by days under the given layout and returns
// the virtual wall time of the run. Per coupling interval the coupler's
// work runs first (it is a dependency of every component), then component
// work runs with per-node serialization: the interval's virtual duration is
// the maximum over nodes of the summed work assigned to that node.
func (m *CESM) RunTimed(days float64, l Layout, w *mpisim.World) (time.Duration, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	var wall time.Duration
	for m.time < days-1e-9 {
		cplFlops, err := m.couple()
		if err != nil {
			return wall, err
		}
		m.flops["cpl"] += cplFlops
		perNode := make(map[string]time.Duration)
		cplNodes := l.Nodes["cpl"]
		cplShare := cplFlops / float64(len(cplNodes))
		for _, h := range cplNodes {
			perNode[h] += l.Device.Time(cplShare, l.Device.Cores)
		}
		var cplTime time.Duration
		for _, h := range cplNodes {
			if perNode[h] > cplTime {
				cplTime = perNode[h]
			}
		}

		// Component compute: real stepping plus virtual accounting.
		dt := m.CouplingInterval / float64(m.StepsPerInterval)
		compNode := make(map[string]time.Duration)
		var mu sync.Mutex
		var wg sync.WaitGroup
		comps := []Component{m.Atm, m.Ocn, m.Lnd, m.Ice}
		flopsDone := make([]float64, len(comps))
		for i, c := range comps {
			wg.Add(1)
			go func(i int, c Component) {
				defer wg.Done()
				var f float64
				for s := 0; s < m.StepsPerInterval; s++ {
					f += c.Step(dt, m.fluxes)
				}
				flopsDone[i] = f
			}(i, c)
		}
		wg.Wait()
		for i, c := range comps {
			m.flops[c.Name()] += flopsDone[i]
			nodes := l.Nodes[c.Name()]
			share := flopsDone[i] / float64(len(nodes))
			mu.Lock()
			for _, h := range nodes {
				compNode[h] += l.Device.Time(share, l.Device.Cores)
			}
			mu.Unlock()
		}
		var compTime time.Duration
		for _, d := range compNode {
			if d > compTime {
				compTime = d
			}
		}
		// Exchange cost over the world (the coupler's gathers), if given.
		var commTime time.Duration
		if w != nil {
			// One exchange ~ the flux grids crossing the interconnect.
			bytes := 8 * len(m.fluxes.SurfaceTemp.Cells) * 3
			commTime = time.Duration(float64(bytes) / 1.25e9 * float64(time.Second) * float64(w.Size()))
		}
		wall += cplTime + compTime + commTime
		m.time += m.CouplingInterval
	}
	return wall, nil
}
