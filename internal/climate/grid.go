// Package climate implements the paper's second Multi-Model / Multi-Kernel
// exemplar (§4.2): a CESM-style earth system of atmosphere, ocean, land and
// sea-ice components coupled through a central coupler (CPL, Fig. 4). Each
// component is an energy-balance model on a latitude–longitude grid;
// components exist in an *active* variant that computes and a *data*
// variant that replays a climatology — the paper's multi-kernel property
// for climate. Node layouts (partitioned / shared) mirror CESM's
// configuration space, and component work is accounted in virtual time so
// layout experiments reproduce the tuning problem the paper describes.
package climate

import (
	"fmt"
	"math"
)

// Grid is a regular latitude–longitude grid with one scalar per cell,
// indexed row-major: cell(i,j) = j*NLon + i with j=0 at the south pole.
type Grid struct {
	NLon, NLat int
	Cells      []float64
}

// NewGrid allocates an NLon×NLat grid initialized to v.
func NewGrid(nlon, nlat int, v float64) *Grid {
	g := &Grid{NLon: nlon, NLat: nlat, Cells: make([]float64, nlon*nlat)}
	for i := range g.Cells {
		g.Cells[i] = v
	}
	return g
}

// At returns the value at (i, j) with longitudinal wraparound.
func (g *Grid) At(i, j int) float64 {
	i = ((i % g.NLon) + g.NLon) % g.NLon
	if j < 0 {
		j = 0
	}
	if j >= g.NLat {
		j = g.NLat - 1
	}
	return g.Cells[j*g.NLon+i]
}

// Set stores v at (i, j).
func (g *Grid) Set(i, j int, v float64) { g.Cells[j*g.NLon+i] = v }

// Lat returns the latitude (radians) of row j, cell centers.
func (g *Grid) Lat(j int) float64 {
	return -math.Pi/2 + (float64(j)+0.5)*math.Pi/float64(g.NLat)
}

// Mean returns the area-weighted global mean (weights ∝ cos φ).
func (g *Grid) Mean() float64 {
	var sum, wsum float64
	for j := 0; j < g.NLat; j++ {
		w := math.Cos(g.Lat(j))
		for i := 0; i < g.NLon; i++ {
			sum += w * g.At(i, j)
			wsum += w
		}
	}
	return sum / wsum
}

// Laplacian computes the five-point Laplacian in index space into out
// (periodic in longitude, clamped at the poles). Index-space spacing keeps
// explicit diffusion unconditionally mild near the poles — the usual choice
// for coarse energy-balance models; spherical metric terms would demand
// implicit stepping for stability.
func (g *Grid) Laplacian(out *Grid) {
	for j := 0; j < g.NLat; j++ {
		for i := 0; i < g.NLon; i++ {
			d2lon := g.At(i-1, j) - 2*g.At(i, j) + g.At(i+1, j)
			d2lat := g.At(i, j-1) - 2*g.At(i, j) + g.At(i, j+1)
			out.Set(i, j, d2lon+d2lat)
		}
	}
}

// Regrid block-averages (or injects) src into dst; grids must be integer
// multiples of each other in both directions — the coupler's regridding
// step between components on different resolutions.
func Regrid(src, dst *Grid) error {
	if src.NLon == dst.NLon && src.NLat == dst.NLat {
		copy(dst.Cells, src.Cells)
		return nil
	}
	if src.NLon%dst.NLon == 0 && src.NLat%dst.NLat == 0 {
		// Coarsen by block average.
		fx, fy := src.NLon/dst.NLon, src.NLat/dst.NLat
		for j := 0; j < dst.NLat; j++ {
			for i := 0; i < dst.NLon; i++ {
				var sum float64
				for dj := 0; dj < fy; dj++ {
					for di := 0; di < fx; di++ {
						sum += src.At(i*fx+di, j*fy+dj)
					}
				}
				dst.Set(i, j, sum/float64(fx*fy))
			}
		}
		return nil
	}
	if dst.NLon%src.NLon == 0 && dst.NLat%src.NLat == 0 {
		// Refine by injection.
		fx, fy := dst.NLon/src.NLon, dst.NLat/src.NLat
		for j := 0; j < dst.NLat; j++ {
			for i := 0; i < dst.NLon; i++ {
				dst.Set(i, j, src.At(i/fx, j/fy))
			}
		}
		return nil
	}
	return fmt.Errorf("climate: cannot regrid %dx%d to %dx%d",
		src.NLon, src.NLat, dst.NLon, dst.NLat)
}
