package climate

import (
	"math"
	"testing"

	"jungle/internal/vtime"
)

func activeSystem(t *testing.T) *CESM {
	t.Helper()
	m, err := New(
		NewAtmosphere(36, 18, "cam4"),
		NewOcean(72, 36), // finer grid: exercises regridding
		NewLand(36, 18),
		NewSeaIce(36, 18),
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGridBasics(t *testing.T) {
	g := NewGrid(8, 4, 2)
	if g.Mean() != 2 {
		t.Fatalf("mean = %v", g.Mean())
	}
	g.Set(0, 0, 10)
	if g.At(8, 0) != 10 { // wraparound
		t.Fatal("longitude wraparound broken")
	}
	if g.At(0, -1) != 10 { // pole clamp
		t.Fatal("pole clamp broken")
	}
	if lat := g.Lat(0); lat >= 0 {
		t.Fatalf("south row latitude = %v", lat)
	}
	if lat := g.Lat(3); lat <= 0 {
		t.Fatalf("north row latitude = %v", lat)
	}
}

func TestLaplacianOfConstantIsZero(t *testing.T) {
	g := NewGrid(16, 8, 7)
	out := NewGrid(16, 8, 99)
	g.Laplacian(out)
	for _, v := range out.Cells {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("laplacian of constant = %v", v)
		}
	}
}

func TestRegridRoundTrip(t *testing.T) {
	src := NewGrid(72, 36, 0)
	for j := 0; j < 36; j++ {
		for i := 0; i < 72; i++ {
			src.Set(i, j, float64(j))
		}
	}
	coarse := NewGrid(36, 18, 0)
	if err := Regrid(src, coarse); err != nil {
		t.Fatal(err)
	}
	// Block average of rows (2j, 2j+1) = 2j + 0.5.
	if got := coarse.At(0, 0); got != 0.5 {
		t.Fatalf("coarse(0,0) = %v", got)
	}
	fine := NewGrid(72, 36, 0)
	if err := Regrid(coarse, fine); err != nil {
		t.Fatal(err)
	}
	if got := fine.At(0, 0); got != 0.5 {
		t.Fatalf("fine(0,0) = %v", got)
	}
	bad := NewGrid(50, 30, 0)
	if err := Regrid(src, bad); err == nil {
		t.Fatal("incommensurate regrid accepted")
	}
}

func TestInsolationProfile(t *testing.T) {
	if insolation(0) <= insolation(math.Pi/2) {
		t.Fatal("equator not sunnier than pole")
	}
	if insolation(math.Pi/3) != insolation(-math.Pi/3) {
		t.Fatal("insolation not symmetric")
	}
}

func TestNewRequiresAllComponents(t *testing.T) {
	if _, err := New(nil, NewOcean(8, 4), NewLand(8, 4), NewSeaIce(8, 4)); err != ErrMissingComponent {
		t.Fatalf("err = %v", err)
	}
}

func TestClimateEquilibrium(t *testing.T) {
	m := activeSystem(t)
	if err := m.Run(400); err != nil {
		t.Fatal(err)
	}
	mean := m.GlobalMeanTemp()
	// An earth-like equilibrium: global mean surface temperature in a
	// plausible band, warm equator, cold poles, some polar ice.
	if mean < 0 || mean > 30 {
		t.Fatalf("global mean temperature = %v °C", mean)
	}
	ocn := m.Ocn.Temp()
	equator := ocn.At(0, ocn.NLat/2)
	pole := ocn.At(0, ocn.NLat-1)
	if equator <= pole {
		t.Fatalf("equator (%v) not warmer than pole (%v)", equator, pole)
	}
	ice := m.Ice.Temp()
	if ice.At(0, ice.NLat-1) <= ice.At(0, ice.NLat/2) {
		t.Fatal("ice not concentrated at the poles")
	}
	for _, name := range []string{"atm", "ocn", "lnd", "ice", "cpl"} {
		if m.Flops()[name] <= 0 {
			t.Fatalf("no flops accounted for %s", name)
		}
	}
}

func TestIceAlbedoFeedbackCoolsOcean(t *testing.T) {
	// With ice present the polar ocean must receive less heat than with
	// ice forcibly removed.
	withIce := activeSystem(t)
	if err := withIce.Run(200); err != nil {
		t.Fatal(err)
	}
	noIce, err := New(
		NewAtmosphere(36, 18, "cam4"),
		NewOcean(72, 36),
		NewLand(36, 18),
		NewDataComponent("ice", NewGrid(36, 18, 0)), // ice remains zero
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := noIce.Run(200); err != nil {
		t.Fatal(err)
	}
	polarWith := withIce.Ocn.Temp().At(0, 35)
	polarWithout := noIce.Ocn.Temp().At(0, 35)
	if polarWith >= polarWithout {
		t.Fatalf("ice-albedo feedback missing: %v vs %v", polarWith, polarWithout)
	}
}

func TestDataComponentReplay(t *testing.T) {
	clim := NewGrid(36, 18, 4)
	d := NewDataComponent("ocn", clim)
	if d.Active() {
		t.Fatal("data component claims active")
	}
	f := &Fluxes{SurfaceTemp: NewGrid(36, 18, 0), AirTemp: NewGrid(36, 18, 0), IceFraction: NewGrid(36, 18, 0)}
	flops := d.Step(1, f)
	if flops >= FlopsPerCellStep*float64(36*18) {
		t.Fatalf("data component too expensive: %v", flops)
	}
	if d.Temp().Mean() != 4 {
		t.Fatal("climatology changed")
	}
	// Swapping active -> data must not break the coupling (Multi-Kernel).
	m, err := New(NewAtmosphere(36, 18, "cam4"), d, NewLand(36, 18), NewSeaIce(36, 18))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10); err != nil {
		t.Fatal(err)
	}
}

func TestCAMVariantsDiffer(t *testing.T) {
	a4 := NewAtmosphere(36, 18, "cam4")
	a5 := NewAtmosphere(36, 18, "cam5")
	if a4.Diff >= a5.Diff {
		t.Fatal("cam5 should transport more heat")
	}
}

func TestLayoutValidation(t *testing.T) {
	l := Layout{Nodes: map[string][]string{"atm": {"n0"}}}
	if err := l.Validate(); err == nil {
		t.Fatal("incomplete layout accepted")
	}
}

func TestPartitionedBeatsSharedLayout(t *testing.T) {
	dev := &vtime.Device{Name: "node", Kind: vtime.CPU, Gflops: 1e-3, Cores: 8}
	nodes := []string{"n0", "n1", "n2", "n3", "n4"}

	run := func(layout Layout) float64 {
		m := activeSystem(t)
		wall, err := m.RunTimed(20, layout, nil)
		if err != nil {
			t.Fatal(err)
		}
		return wall.Seconds()
	}

	partitioned := run(Layout{Device: dev, Nodes: map[string][]string{
		"atm": {nodes[0]}, "ocn": {nodes[1], nodes[2]}, "lnd": {nodes[3]},
		"ice": {nodes[4]}, "cpl": {nodes[0]},
	}})
	shared := run(Layout{Device: dev, Nodes: map[string][]string{
		"atm": {nodes[0]}, "ocn": {nodes[0]}, "lnd": {nodes[0]},
		"ice": {nodes[0]}, "cpl": {nodes[0]},
	}})
	if partitioned >= shared {
		t.Fatalf("partitioned (%v) not faster than shared single node (%v)", partitioned, shared)
	}
}

func TestResultsIndependentOfLayout(t *testing.T) {
	// Layouts change time, never physics: same model state after RunTimed
	// under different layouts.
	dev := &vtime.Device{Name: "node", Kind: vtime.CPU, Gflops: 1e-3, Cores: 8}
	runState := func(layout Layout) float64 {
		m := activeSystem(t)
		if _, err := m.RunTimed(30, layout, nil); err != nil {
			t.Fatal(err)
		}
		return m.GlobalMeanTemp()
	}
	a := runState(Layout{Device: dev, Nodes: map[string][]string{
		"atm": {"a"}, "ocn": {"b"}, "lnd": {"c"}, "ice": {"d"}, "cpl": {"a"},
	}})
	b := runState(Layout{Device: dev, Nodes: map[string][]string{
		"atm": {"x"}, "ocn": {"x"}, "lnd": {"x"}, "ice": {"x"}, "cpl": {"x"},
	}})
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("layout changed physics: %v vs %v", a, b)
	}
}
