package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTrafficAccumulates(t *testing.T) {
	r := New()
	r.RecordTraffic("a", "b", "ipl", 100)
	r.RecordTraffic("a", "b", "ipl", 50)
	r.RecordTraffic("a", "b", "mpi", 10)
	if got := r.Bytes("a", "b", "ipl"); got != 150 {
		t.Fatalf("ipl bytes %d, want 150", got)
	}
	if got := r.Bytes("a", "b", ""); got != 160 {
		t.Fatalf("total bytes %d, want 160", got)
	}
	if got := r.Bytes("b", "a", "ipl"); got != 0 {
		t.Fatalf("reverse bytes %d, want 0", got)
	}
}

func TestTotalByClass(t *testing.T) {
	r := New()
	r.RecordTraffic("a", "b", "ipl", 100)
	r.RecordTraffic("c", "d", "ipl", 1)
	r.RecordTraffic("a", "b", "mpi", 10)
	totals := r.TotalByClass()
	if totals["ipl"] != 101 || totals["mpi"] != 10 {
		t.Fatalf("totals = %v", totals)
	}
}

func TestTrafficTableOrdering(t *testing.T) {
	r := New()
	r.RecordTraffic("a", "b", "ipl", 1)
	r.RecordTraffic("c", "d", "mpi", 100)
	rows := r.TrafficTable()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Bytes != 100 {
		t.Fatalf("table not sorted by bytes desc: %+v", rows)
	}
}

func TestLoad(t *testing.T) {
	r := New()
	r.RecordLoad("gpu-node", 0, 0.05)
	r.RecordLoad("gpu-node", time.Second, 0.15)
	r.RecordLoad("cpu-node", 0, 0.9)
	if got := r.MeanLoad("gpu-node"); got != 0.1 {
		t.Fatalf("mean load %v, want 0.1", got)
	}
	if got := r.MeanLoad("unknown"); got != 0 {
		t.Fatalf("unknown host load %v, want 0", got)
	}
	hosts := r.LoadHosts()
	if len(hosts) != 2 || hosts[0] != "cpu-node" {
		t.Fatalf("hosts %v", hosts)
	}
}

func TestEvents(t *testing.T) {
	r := New()
	r.RecordEvent(time.Second, "daemon", "worker-start", "gadget on das4-vu")
	r.RecordEvent(2*time.Second, "registry", "died", "node3")
	ev := r.Events()
	if len(ev) != 2 || ev[0].Kind != "worker-start" || ev[1].Actor != "registry" {
		t.Fatalf("events %+v", ev)
	}
}

func TestRenderers(t *testing.T) {
	r := New()
	r.RecordTraffic("seattle.laptop", "das4-vu.fe", "ipl", 123456)
	r.RecordLoad("lgm.node00", 0, 0.07)
	tr := r.RenderTraffic()
	if !strings.Contains(tr, "seattle.laptop") || !strings.Contains(tr, "123456") {
		t.Fatalf("traffic render missing data:\n%s", tr)
	}
	ld := r.RenderLoad()
	if !strings.Contains(ld, "lgm.node00") || !strings.Contains(ld, "7.0%") {
		t.Fatalf("load render missing data:\n%s", ld)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.RecordTraffic("a", "b", "ipl", 1)
				r.RecordLoad("h", 0, 0.5)
			}
		}()
	}
	wg.Wait()
	if got := r.Bytes("a", "b", "ipl"); got != 4000 {
		t.Fatalf("bytes %d, want 4000", got)
	}
}
