package trace

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"
)

// Channel-layer call telemetry: every RPC any channel (mpi, conn, gang)
// completes records its virtual round-trip latency under a
// session/model/method key, and every issue records the channel's
// in-flight depth under a per-worker key. Recording is lock-striped —
// a fixed shard array keyed by a hash of the label — so many channels
// hammering one Recorder contend only per shard, and the hot path
// allocates nothing once a key's histogram exists.

// callStripes is the number of lock stripes for call/queue recording.
const callStripes = 16

// CallKey labels one call-latency histogram.
type CallKey struct {
	Session string // "" for standalone simulations
	Model   string // worker kind, with a "/r<rank>" suffix for gang ranks
	Method  string
}

// CallStats is the recorded telemetry for one call key.
type CallStats struct {
	Hist   Histogram // virtual round-trip latency, nanoseconds
	Errors uint64    // transport-level failures (no response arrived)
	// Floor is the configured vtime round-trip minimum for the channel
	// that recorded the calls (2x the routed path latency; the mpi
	// message cost for in-process channels). Calibrate compares observed
	// latency against it.
	Floor time.Duration
}

type callShard struct {
	mu     sync.Mutex
	calls  map[CallKey]*CallStats
	queues map[string]*Histogram
}

func stripeOf(a, b, c string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(a))
	h.Write([]byte{0})
	h.Write([]byte(b))
	h.Write([]byte{0})
	h.Write([]byte(c))
	return h.Sum32() % callStripes
}

func (r *Recorder) callShard(i uint32) *callShard { return &r.callShards[i] }

// RecordCall records one completed call's virtual round-trip latency.
// floor is the channel's configured minimum round trip (kept with the
// stats for calibration; pass 0 when unknown).
func (r *Recorder) RecordCall(session, model, method string, latency, floor time.Duration) {
	key := CallKey{Session: session, Model: model, Method: method}
	s := r.callShard(stripeOf(session, model, method))
	s.mu.Lock()
	if s.calls == nil {
		s.calls = make(map[CallKey]*CallStats)
	}
	st := s.calls[key]
	if st == nil {
		st = &CallStats{}
		s.calls[key] = st
	}
	st.Hist.Record(int64(latency))
	if floor > 0 {
		st.Floor = floor
	}
	s.mu.Unlock()
}

// RecordCallError counts a call that failed at the transport level (the
// completion carried an error instead of a response).
func (r *Recorder) RecordCallError(session, model, method string) {
	key := CallKey{Session: session, Model: model, Method: method}
	s := r.callShard(stripeOf(session, model, method))
	s.mu.Lock()
	if s.calls == nil {
		s.calls = make(map[CallKey]*CallStats)
	}
	st := s.calls[key]
	if st == nil {
		st = &CallStats{}
		s.calls[key] = st
	}
	st.Errors++
	s.mu.Unlock()
}

// RecordQueueDepth records a channel's in-flight call count, sampled at
// issue time, under the worker's label.
func (r *Recorder) RecordQueueDepth(worker string, depth int) {
	s := r.callShard(stripeOf(worker, "", ""))
	s.mu.Lock()
	if s.queues == nil {
		s.queues = make(map[string]*Histogram)
	}
	h := s.queues[worker]
	if h == nil {
		h = &Histogram{}
		s.queues[worker] = h
	}
	h.Record(int64(depth))
	s.mu.Unlock()
}

// CallRow is one line of the per-method latency table.
type CallRow struct {
	CallKey
	Stats CallStats
}

// CallTable returns every recorded call key with a deep copy of its
// stats, sorted by session, model, method.
func (r *Recorder) CallTable() []CallRow {
	var rows []CallRow
	for i := range r.callShards {
		s := &r.callShards[i]
		s.mu.Lock()
		for k, st := range s.calls {
			rows = append(rows, CallRow{CallKey: k, Stats: *st})
		}
		s.mu.Unlock()
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Session != b.Session {
			return a.Session < b.Session
		}
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		return a.Method < b.Method
	})
	return rows
}

// CallsSnapshot returns a deep copy of all call stats, keyed for
// point-in-time diffing (see DiffCalls).
func (r *Recorder) CallsSnapshot() map[CallKey]CallStats {
	out := make(map[CallKey]CallStats)
	for i := range r.callShards {
		s := &r.callShards[i]
		s.mu.Lock()
		for k, st := range s.calls {
			out[k] = *st
		}
		s.mu.Unlock()
	}
	return out
}

// QueueRow is one line of the per-worker queue-depth table.
type QueueRow struct {
	Worker string
	Hist   Histogram
}

// QueueTable returns every worker's queue-depth histogram (deep copies),
// sorted by worker label.
func (r *Recorder) QueueTable() []QueueRow {
	var rows []QueueRow
	for i := range r.callShards {
		s := &r.callShards[i]
		s.mu.Lock()
		for w, h := range s.queues {
			rows = append(rows, QueueRow{Worker: w, Hist: *h})
		}
		s.mu.Unlock()
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Worker < rows[j].Worker })
	return rows
}

// CallSummary aggregates a set of call stats into one line.
type CallSummary struct {
	Calls  uint64
	Errors uint64
	P50    time.Duration
	P99    time.Duration
}

// String renders the summary for per-iteration experiment lines.
func (c CallSummary) String() string {
	if c.Calls == 0 {
		return "no calls"
	}
	s := fmt.Sprintf("%d calls, rpc p50 %s / p99 %s",
		c.Calls, c.P50.Round(time.Microsecond), c.P99.Round(time.Microsecond))
	if c.Errors > 0 {
		s += fmt.Sprintf(", %d errors", c.Errors)
	}
	return s
}

// DiffCalls merges the per-key growth between two CallsSnapshot maps
// (before may be nil) into one summary — the call telemetry attributable
// to the work done between the snapshots.
func DiffCalls(before, after map[CallKey]CallStats) CallSummary {
	var merged Histogram
	var errors uint64
	for k, st := range after {
		h := st.Hist
		errs := st.Errors
		if prev, ok := before[k]; ok {
			h.Sub(&prev.Hist)
			errs -= prev.Errors
		}
		merged.Merge(&h)
		errors += errs
	}
	return CallSummary{
		Calls:  merged.Count,
		Errors: errors,
		P50:    time.Duration(merged.Quantile(0.5)),
		P99:    time.Duration(merged.Quantile(0.99)),
	}
}

// RenderCalls renders the channel-layer telemetry: per-method latency
// histograms (count, errors, p50/p90/p99/max, and the configured floor)
// followed by the per-worker queue-depth table.
func (r *Recorder) RenderCalls() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-14s %-18s %8s %6s %10s %10s %10s %10s %10s\n",
		"SESSION", "MODEL", "METHOD", "CALLS", "ERRS", "P50", "P90", "P99", "MAX", "FLOOR")
	for _, row := range r.CallTable() {
		sess := row.Session
		if sess == "" {
			sess = "-"
		}
		h := &row.Stats.Hist
		fmt.Fprintf(&b, "%-12s %-14s %-18s %8d %6d %10s %10s %10s %10s %10s\n",
			sess, row.Model, row.Method, h.Count, row.Stats.Errors,
			fmtDur(h.Quantile(0.5)), fmtDur(h.Quantile(0.9)), fmtDur(h.Quantile(0.99)),
			fmtDur(h.Max), row.Stats.Floor.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "\n%-40s %10s %8s %8s %8s\n", "WORKER QUEUE", "SAMPLES", "P50", "P99", "MAX")
	for _, row := range r.QueueTable() {
		fmt.Fprintf(&b, "%-40s %10d %8d %8d %8d\n",
			row.Worker, row.Hist.Count, row.Hist.Quantile(0.5), row.Hist.Quantile(0.99), row.Hist.Max)
	}
	return b.String()
}
