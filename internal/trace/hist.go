package trace

import (
	"fmt"
	"math/bits"
	"time"
)

// The observability plane's histogram core: a streaming fixed-bucket
// histogram over non-negative int64 samples (latencies in nanoseconds,
// queue depths, blob sizes). Buckets are powers of two, so recording is a
// bits.Len64 — no floating point, no allocation — and two histograms
// recorded anywhere in the system merge by adding counts bucket-wise.
// Quantile estimates return the upper bound of the bucket holding the
// rank, which bounds the estimate within a factor of two of the exact
// sample quantile (the property the hist tests check).

// HistBuckets is the fixed bucket count: bucket 0 holds zero (and
// negative, clamped) samples, buckets 1..62 hold samples v with
// bits.Len64(v) == i (i.e. v in [2^(i-1), 2^i)), and bucket 63 is the
// overflow bucket for samples at or beyond 2^62.
const HistBuckets = 64

// histOverflow is the index of the overflow bucket.
const histOverflow = HistBuckets - 1

// Histogram is a streaming fixed-bucket histogram. The zero value is
// ready to use. Record is not safe for concurrent use — the Recorder
// stripes access across shards; see calls.go.
type Histogram struct {
	Count   uint64
	Sum     int64
	Min     int64 // valid when Count > 0
	Max     int64
	Buckets [HistBuckets]uint64
}

// histBucket maps a sample to its bucket index.
func histBucket(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b > histOverflow-1 {
		return histOverflow
	}
	return b
}

// BucketBound returns the inclusive upper bound of bucket i (0 for the
// zero bucket). The overflow bucket has no finite bound; it reports the
// largest value the penultimate bucket excludes.
func BucketBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= histOverflow {
		i = histOverflow
	}
	return int64(1)<<uint(i) - 1
}

// Record folds one sample in. Negative samples clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.Buckets[histBucket(v)]++
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
}

// Merge folds another histogram's samples into h. Merging the histograms
// of two sample streams is equivalent (bucket-exact) to recording the
// concatenated stream.
func (h *Histogram) Merge(o *Histogram) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Sub removes a previously-snapshotted prefix from h, leaving the
// histogram of the samples recorded since the snapshot (Min/Max stay
// those of the full stream — order statistics do not subtract).
func (h *Histogram) Sub(prev *Histogram) {
	h.Count -= prev.Count
	h.Sum -= prev.Sum
	for i := range h.Buckets {
		h.Buckets[i] -= prev.Buckets[i]
	}
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the recorded
// samples: the upper bound of the bucket containing the rank, which is
// within a factor of two above the exact sample quantile. The overflow
// bucket reports Max (exact for the stream maximum). Returns 0 for an
// empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the q-quantile in the sorted stream (nearest-rank, 0-based).
	rank := uint64(q * float64(h.Count-1))
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		if cum > rank {
			if i == histOverflow {
				return h.Max
			}
			return BucketBound(i)
		}
	}
	return h.Max
}

// Mean returns the exact mean of the recorded samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// fmtDur renders a nanosecond histogram value compactly for tables.
func fmtDur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// summary renders "p50/p99/max" of a duration-valued histogram.
func (h *Histogram) summary() string {
	return fmt.Sprintf("%s/%s/%s", fmtDur(h.Quantile(0.5)), fmtDur(h.Quantile(0.99)), fmtDur(h.Max))
}
