package trace

import (
	"strings"
	"testing"
	"time"
)

func TestGangTelemetry(t *testing.T) {
	r := New()
	if _, _, ok := r.GangSkew("gravity/site-mixed"); ok {
		t.Fatal("unsampled gang reported skew")
	}
	r.RecordGangSample("gravity/site-mixed", GangSample{
		At: 1 * time.Millisecond, Rows: []int{64, 64, 64, 64},
		Compute: []time.Duration{100, 100, 100, 400}, Skew: 4.0, Action: "reshard",
	})
	r.RecordGangSample("gravity/site-mixed", GangSample{
		At: 2 * time.Millisecond, Rows: []int{79, 79, 79, 19},
		Compute: []time.Duration{120, 120, 120, 118}, Skew: 1.02,
	})
	r.RecordGangSample("hydro/site-spare", GangSample{
		At: 3 * time.Millisecond, Skew: 1.5, Action: "migrate",
	})

	last, max, ok := r.GangSkew("gravity/site-mixed")
	if !ok || last != 1.02 || max != 4.0 {
		t.Fatalf("GangSkew = (%v, %v, %v)", last, max, ok)
	}
	rows := r.GangTable()
	if len(rows) != 2 || rows[0].Gang != "gravity/site-mixed" || rows[1].Gang != "hydro/site-spare" {
		t.Fatalf("GangTable order: %v", rows)
	}
	g := rows[0].Stats
	if g.Reshards != 1 || g.Migrations != 0 || len(g.Samples) != 2 {
		t.Fatalf("gravity stats = %+v", g)
	}
	if rows[1].Stats.Migrations != 1 {
		t.Fatalf("hydro stats = %+v", rows[1].Stats)
	}

	// The table deep-copies samples: mutating a returned row must not
	// reach the recorder.
	rows[0].Stats.Samples[0].Rows[0] = -1
	if r.GangTable()[0].Stats.Samples[0].Rows[0] != 64 {
		t.Fatal("GangTable aliases recorder state")
	}

	out := r.RenderGangs()
	for _, want := range []string{"GANG", "SKEW", "RESHARDS", "gravity/site-mixed", "79/79/79/19"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RenderGangs missing %q:\n%s", want, out)
		}
	}
}
