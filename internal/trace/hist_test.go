package trace

import (
	"encoding/binary"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// randomStream builds a sample stream that exercises every bucket regime:
// zeros, small integers, values spread across magnitudes, and (when wide)
// values near the overflow boundary.
func randomStream(rng *rand.Rand, n int, wide bool) []int64 {
	vals := make([]int64, n)
	for i := range vals {
		switch rng.Intn(4) {
		case 0:
			vals[i] = int64(rng.Intn(3)) // 0, 1, 2
		case 1:
			vals[i] = rng.Int63n(1000)
		case 2:
			vals[i] = int64(1) << uint(rng.Intn(40))
		default:
			if wide {
				vals[i] = rng.Int63() // anywhere up to 2^63-1
			} else {
				vals[i] = rng.Int63n(1 << 50)
			}
		}
	}
	return vals
}

// exactQuantile is the nearest-rank quantile Quantile estimates against:
// the element at rank floor(q*(n-1)) of the sorted stream.
func exactQuantile(sorted []int64, q float64) int64 {
	return sorted[int(uint64(q*float64(len(sorted)-1)))]
}

// TestHistQuantileBounds is the core histogram property: for any stream,
// the quantile estimate equals the exact nearest-rank quantile when that
// is 0, and otherwise lies in [exact, 2*exact) — the power-of-two bucket
// bound. Values in the overflow bucket only promise estimate >= exact.
func TestHistQuantileBounds(t *testing.T) {
	quantiles := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		vals := randomStream(rng, 1+rng.Intn(2000), false)
		var h Histogram
		for _, v := range vals {
			h.Record(v)
		}
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, q := range quantiles {
			exact := exactQuantile(sorted, q)
			est := h.Quantile(q)
			if exact == 0 {
				if est != 0 {
					t.Fatalf("seed %d q=%v: exact 0 but estimate %d", seed, q, est)
				}
				continue
			}
			if est < exact || est >= 2*exact {
				t.Fatalf("seed %d q=%v: estimate %d outside [%d, %d)", seed, q, est, exact, 2*exact)
			}
		}
	}
}

// TestHistMergeEquivalence: merging the histograms of two streams is
// bucket-exact equivalent to recording the concatenated stream — the
// property that makes per-shard and per-rank histograms roll up honestly.
func TestHistMergeEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		vals := randomStream(rng, 2+rng.Intn(1000), true)
		cut := rng.Intn(len(vals) + 1)
		var a, b, whole Histogram
		for _, v := range vals[:cut] {
			a.Record(v)
		}
		for _, v := range vals[cut:] {
			b.Record(v)
		}
		for _, v := range vals {
			whole.Record(v)
		}
		a.Merge(&b)
		if !reflect.DeepEqual(a, whole) {
			t.Fatalf("seed %d cut %d: merge(a,b) != record(a++b):\n%+v\n%+v", seed, cut, a, whole)
		}
	}
}

func TestHistMergeEmpty(t *testing.T) {
	var h, empty Histogram
	h.Record(5)
	before := h
	h.Merge(&empty)
	if !reflect.DeepEqual(h, before) {
		t.Fatalf("merging an empty histogram changed h: %+v", h)
	}
	var into Histogram
	into.Merge(&before)
	if !reflect.DeepEqual(into, before) {
		t.Fatalf("merging into an empty histogram != source: %+v vs %+v", into, before)
	}
}

// TestHistZeroBucket: zeros and negatives (clamped) land in bucket 0 and
// every quantile of an all-zero stream is exactly 0.
func TestHistZeroBucket(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(-7)
	h.Record(math.MinInt64)
	if h.Buckets[0] != 3 || h.Count != 3 || h.Sum != 0 || h.Min != 0 || h.Max != 0 {
		t.Fatalf("zero bucket state: %+v", h)
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%v) = %d, want 0", q, got)
		}
	}
}

// TestHistOverflowBucket: samples at or beyond 2^62 share the overflow
// bucket, whose quantile reports the exact stream maximum.
func TestHistOverflowBucket(t *testing.T) {
	var h Histogram
	big := []int64{1 << 62, (1 << 62) + 12345, math.MaxInt64}
	for _, v := range big {
		h.Record(v)
	}
	if h.Buckets[histOverflow] != 3 {
		t.Fatalf("overflow bucket holds %d, want 3", h.Buckets[histOverflow])
	}
	if got := h.Quantile(1); got != math.MaxInt64 {
		t.Fatalf("Quantile(1) = %d, want stream max", got)
	}
	if got := h.Quantile(0.5); got != math.MaxInt64 {
		t.Fatalf("Quantile(0.5) in overflow = %d, want Max", got)
	}
	// The penultimate bucket keeps its finite bound; just below the
	// overflow boundary must not spill over.
	var h2 Histogram
	h2.Record(1<<62 - 1)
	if h2.Buckets[histOverflow] != 0 || h2.Buckets[histOverflow-1] != 1 {
		t.Fatalf("2^62-1 bucketed wrong: %v", h2.Buckets)
	}
}

// TestBucketBound: every value's bucket bound contains it, the previous
// bucket's bound excludes it, and out-of-range indices clamp.
func TestBucketBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		v := rng.Int63()
		b := histBucket(v)
		if b < histOverflow && v > BucketBound(b) {
			t.Fatalf("v=%d above its bucket %d bound %d", v, b, BucketBound(b))
		}
		if b > 0 && v <= BucketBound(b-1) {
			t.Fatalf("v=%d not above bucket %d's bound %d", v, b-1, BucketBound(b-1))
		}
	}
	if BucketBound(-1) != 0 || BucketBound(0) != 0 {
		t.Fatal("zero bucket bound must be 0")
	}
	if BucketBound(1000) != BucketBound(histOverflow) {
		t.Fatal("out-of-range bucket index must clamp to the overflow bound")
	}
}

// TestHistSub: subtracting a snapshotted prefix leaves exactly the suffix
// stream's counts, sum and buckets (Min/Max stay whole-stream).
func TestHistSub(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		vals := randomStream(rng, 2+rng.Intn(500), true)
		cut := rng.Intn(len(vals) + 1)
		var h Histogram
		for _, v := range vals[:cut] {
			h.Record(v)
		}
		snap := h
		for _, v := range vals[cut:] {
			h.Record(v)
		}
		h.Sub(&snap)
		var suffix Histogram
		for _, v := range vals[cut:] {
			suffix.Record(v)
		}
		if h.Count != suffix.Count || h.Sum != suffix.Sum || h.Buckets != suffix.Buckets {
			t.Fatalf("seed %d: sub left %+v, want suffix %+v", seed, h, suffix)
		}
	}
}

func TestHistMean(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 {
		t.Fatal("empty mean must be 0")
	}
	for _, v := range []int64{1, 2, 3, 6} {
		h.Record(v)
	}
	if got := h.Mean(); got != 3 {
		t.Fatalf("mean = %v, want 3", got)
	}
}

func TestHistQuantileClamps(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile must be 0")
	}
	h.Record(100)
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("out-of-range q must clamp to [0,1]")
	}
}

// FuzzHistogram decodes the fuzz input as int64 samples and checks the
// structural invariants that must hold for ANY stream: bucket counts sum
// to Count, Sum/Min/Max match the clamped stream, quantiles are monotone
// in q, and every quantile estimate is within the bucket bound of the
// exact nearest-rank value.
func FuzzHistogram(f *testing.F) {
	seed := make([]byte, 0, 64)
	for _, v := range []int64{0, 1, -5, 1000, 1 << 40, 1 << 62, math.MaxInt64} {
		seed = binary.LittleEndian.AppendUint64(seed, uint64(v))
	}
	f.Add(seed)
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		var vals []int64
		for len(data) >= 8 {
			v := int64(binary.LittleEndian.Uint64(data))
			if v < 0 {
				v = 0 // Record clamps; mirror it for the exact comparison
			}
			vals = append(vals, v)
			data = data[8:]
		}
		if len(vals) == 0 {
			return
		}
		var h Histogram
		var sum, min, max int64
		min = math.MaxInt64
		for _, v := range vals {
			h.Record(v)
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		var bucketSum uint64
		for _, c := range h.Buckets {
			bucketSum += c
		}
		if bucketSum != h.Count || h.Count != uint64(len(vals)) {
			t.Fatalf("bucket sum %d, count %d, stream %d", bucketSum, h.Count, len(vals))
		}
		if h.Sum != sum || h.Min != min || h.Max != max {
			t.Fatalf("sum/min/max = %d/%d/%d, want %d/%d/%d", h.Sum, h.Min, h.Max, sum, min, max)
		}
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		prev := int64(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1} {
			est := h.Quantile(q)
			if est < prev {
				t.Fatalf("quantile not monotone at q=%v: %d < %d", q, est, prev)
			}
			prev = est
			exact := exactQuantile(sorted, q)
			if exact == 0 && est != 0 {
				t.Fatalf("q=%v: exact 0 but estimate %d", q, est)
			}
			if est < exact {
				t.Fatalf("q=%v: estimate %d below exact %d", q, est, exact)
			}
			// The factor-of-two bound holds below the overflow bucket; the
			// overflow bucket only promises est <= Max.
			if histBucket(exact) < histOverflow && exact > 0 && est >= 2*exact {
				t.Fatalf("q=%v: estimate %d not within 2x of exact %d", q, est, exact)
			}
			if est > h.Max {
				t.Fatalf("q=%v: estimate %d above max %d", q, est, h.Max)
			}
		}
	})
}
