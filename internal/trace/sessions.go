package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Per-session accounting for the multi-tenant control plane: jungled
// labels each session's calls, transfers and workers so one recorder can
// answer "who is using the jungle, and how much" — the monitoring view
// the single-tenant traffic/load tables cannot give once several
// simulations share a daemon.

// SessionStats is one session's accumulated accounting.
type SessionStats struct {
	State     string // control-plane lifecycle state (queued/running/...)
	Workers   int    // live workers the session holds right now
	Calls     int    // RPCs issued by the session's coupler
	Transfers int    // state transfers / checkpoint movements
	Evictions int    // times the scheduler idle-reaped the session
	Resumes   int    // times the session was resumed from its checkpoint
}

// sessionLocked returns (creating if needed) a session's record. Callers
// hold r.mu.
func (r *Recorder) sessionLocked(id string) *SessionStats {
	if r.sessions == nil {
		r.sessions = make(map[string]*SessionStats)
	}
	s := r.sessions[id]
	if s == nil {
		s = &SessionStats{}
		r.sessions[id] = s
	}
	return s
}

// SessionState records a session's control-plane lifecycle state.
func (r *Recorder) SessionState(id, state string) {
	r.mu.Lock()
	r.sessionLocked(id).State = state
	r.mu.Unlock()
}

// SessionWorkerDelta adjusts a session's live-worker gauge.
func (r *Recorder) SessionWorkerDelta(id string, delta int) {
	r.mu.Lock()
	r.sessionLocked(id).Workers += delta
	r.mu.Unlock()
}

// SessionCall counts one RPC issued on behalf of a session.
func (r *Recorder) SessionCall(id string) {
	r.mu.Lock()
	r.sessionLocked(id).Calls++
	r.mu.Unlock()
}

// SessionTransfer counts one state transfer on behalf of a session.
func (r *Recorder) SessionTransfer(id string) {
	r.mu.Lock()
	r.sessionLocked(id).Transfers++
	r.mu.Unlock()
}

// SessionEviction counts one idle-reap of a session.
func (r *Recorder) SessionEviction(id string) {
	r.mu.Lock()
	r.sessionLocked(id).Evictions++
	r.mu.Unlock()
}

// SessionResume counts one checkpoint resume of a session.
func (r *Recorder) SessionResume(id string) {
	r.mu.Lock()
	r.sessionLocked(id).Resumes++
	r.mu.Unlock()
}

// Session returns a copy of one session's stats; ok is false when the
// session was never recorded.
func (r *Recorder) Session(id string) (SessionStats, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[id]
	if !ok {
		return SessionStats{}, false
	}
	return *s, true
}

// Sessions returns a copy of every session's stats.
func (r *Recorder) Sessions() map[string]SessionStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]SessionStats, len(r.sessions))
	for id, s := range r.sessions {
		out[id] = *s
	}
	return out
}

// RenderSessions renders the control plane's tenancy table — the
// multi-tenant companion to RenderTraffic/RenderLoad.
func (r *Recorder) RenderSessions() string {
	stats := r.Sessions()
	ids := make([]string, 0, len(stats))
	for id := range stats {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var b strings.Builder
	b.WriteString("sessions:\n")
	for _, id := range ids {
		s := stats[id]
		fmt.Fprintf(&b, "  %-16s %-10s workers=%-3d calls=%-7d transfers=%-5d evictions=%d resumes=%d\n",
			id, s.State, s.Workers, s.Calls, s.Transfers, s.Evictions, s.Resumes)
	}
	if len(ids) == 0 {
		b.WriteString("  (none)\n")
	}
	return b.String()
}
