package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Gang telemetry: the elastic-gang rebalancer and the human read the same
// numbers. Each measurement round records per-rank slab widths and compute
// times plus the derived skew gauge (max/min rank compute time per gang);
// reshard and migration decisions are stamped on the sample that caused
// them. This is the first piece of the ROADMAP "production telemetry"
// item: the rebalancer consumes exactly what RenderGangs shows.

// GangSample is one rebalancer measurement round for a gang.
type GangSample struct {
	// At is the coupler's virtual time when the round completed.
	At time.Duration
	// Rows and Compute are per-rank (rank order): current slab width and
	// virtual compute time spent in slab work since the previous round.
	Rows    []int
	Compute []time.Duration
	// Skew is max/min rank compute time (1 = perfectly balanced; 0 when
	// a rank reported no compute, meaning the window was empty).
	Skew float64
	// Action records what the rebalancer did with this sample: "",
	// "reshard" or "migrate".
	Action string
}

// GangStats aggregates one gang's measurement history.
type GangStats struct {
	Samples    []GangSample
	MaxSkew    float64
	LastSkew   float64
	Reshards   int
	Migrations int
}

// RecordGangSample appends one measurement round for the named gang
// (models are named kind/resource by the rebalancer; any stable label
// works).
func (r *Recorder) RecordGangSample(gang string, s GangSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gangs == nil {
		r.gangs = make(map[string]*GangStats)
	}
	g := r.gangs[gang]
	if g == nil {
		g = &GangStats{}
		r.gangs[gang] = g
	}
	g.Samples = append(g.Samples, s)
	g.LastSkew = s.Skew
	if s.Skew > g.MaxSkew {
		g.MaxSkew = s.Skew
	}
	switch s.Action {
	case "reshard":
		g.Reshards++
	case "migrate":
		g.Migrations++
	}
}

// GangSkew returns the named gang's latest and maximum observed skew; ok
// is false when the gang has never been sampled.
func (r *Recorder) GangSkew(gang string) (last, max float64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gangs[gang]
	if g == nil {
		return 0, 0, false
	}
	return g.LastSkew, g.MaxSkew, true
}

// GangRow is one line of the gang-skew table.
type GangRow struct {
	Gang  string
	Stats GangStats
}

// GangTable returns all sampled gangs sorted by name.
func (r *Recorder) GangTable() []GangRow {
	r.mu.Lock()
	defer r.mu.Unlock()
	rows := make([]GangRow, 0, len(r.gangs))
	for name, g := range r.gangs {
		cp := *g
		cp.Samples = make([]GangSample, len(g.Samples))
		for i, s := range g.Samples {
			s.Rows = append([]int(nil), s.Rows...)
			s.Compute = append([]time.Duration(nil), s.Compute...)
			cp.Samples[i] = s
		}
		rows = append(rows, GangRow{Gang: name, Stats: cp})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Gang < rows[j].Gang })
	return rows
}

// RenderGangs renders the skew-gauge view: one line per gang with the
// latest per-rank row counts, the latest and worst skew, and how often
// the rebalancer acted.
func (r *Recorder) RenderGangs() string {
	rows := r.GangTable()
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %7s %8s %8s %9s %9s  %s\n",
		"GANG", "ROUNDS", "SKEW", "MAXSKEW", "RESHARDS", "MIGRATES", "ROWS")
	for _, row := range rows {
		g := row.Stats
		rowsStr := "-"
		if n := len(g.Samples); n > 0 && len(g.Samples[n-1].Rows) > 0 {
			parts := make([]string, len(g.Samples[n-1].Rows))
			for i, w := range g.Samples[n-1].Rows {
				parts[i] = fmt.Sprintf("%d", w)
			}
			rowsStr = strings.Join(parts, "/")
		}
		fmt.Fprintf(&b, "%-28s %7d %8.2f %8.2f %9d %9d  %s\n",
			row.Gang, len(g.Samples), g.LastSkew, g.MaxSkew, g.Reshards, g.Migrations, rowsStr)
	}
	return b.String()
}
