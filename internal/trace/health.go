package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Per-link overlay health: the goodput samples the SmartSockets prober
// already reports (trace.RecordGoodput) joined with the bulk-transfer
// outcome counters per directed host pair, plus the daemon store's
// checkpoint-size and restore-latency gauges and the deployment's
// capacity gauges. RenderHealth is the roll-up view; rows whose last
// probe is older than the staleness horizon are marked STALE.

// Transfer-outcome kinds recorded per link (see core's transfer paths).
const (
	LinkDirect         = "direct"
	LinkStriped        = "striped"
	LinkHairpin        = "hairpin"
	LinkFallback       = "fallback"
	LinkStripeFallback = "stripe-fallback"
)

// LinkTransfers counts bulk-transfer outcomes over one directed link.
type LinkTransfers struct {
	Direct, Striped, Hairpin, Fallback, StripeFallback int
}

func (t *LinkTransfers) add(kind string) {
	switch kind {
	case LinkDirect:
		t.Direct++
	case LinkStriped:
		t.Striped++
	case LinkHairpin:
		t.Hairpin++
	case LinkFallback:
		t.Fallback++
	case LinkStripeFallback:
		t.StripeFallback++
	}
}

// RecordLinkTransfer counts one bulk-transfer outcome on the directed
// from->to link. kind is one of the Link* constants.
func (r *Recorder) RecordLinkTransfer(from, to, kind string) {
	r.mu.Lock()
	if r.linkXfer == nil {
		r.linkXfer = make(map[[2]string]*LinkTransfers)
	}
	t := r.linkXfer[[2]string{from, to}]
	if t == nil {
		t = &LinkTransfers{}
		r.linkXfer[[2]string{from, to}] = t
	}
	t.add(kind)
	r.mu.Unlock()
}

// DefaultStaleAfter is the staleness horizon RenderHealth applies: a
// link whose last goodput probe is older than this (in virtual time) is
// marked STALE — its measurement may no longer describe the link.
const DefaultStaleAfter = time.Minute

// LinkHealthRow is one directed link's health: the latest goodput sample
// (HasGoodput false when the link was never probed), staleness against
// the caller's clock, and the transfer-outcome counters.
type LinkHealthRow struct {
	From, To   string
	Goodput    GoodputSample
	HasGoodput bool
	Stale      bool
	Transfers  LinkTransfers
}

// LinkHealthTable joins goodput samples and transfer counters over the
// union of observed links, sorted by (from, to). now is the caller's
// virtual clock; a negative now disables staleness marking (callers
// without a clock, e.g. a multi-session daemon).
func (r *Recorder) LinkHealthTable(now, staleAfter time.Duration) []LinkHealthRow {
	r.mu.Lock()
	keys := make(map[[2]string]bool, len(r.goodput)+len(r.linkXfer))
	for k := range r.goodput {
		keys[k] = true
	}
	for k := range r.linkXfer {
		keys[k] = true
	}
	rows := make([]LinkHealthRow, 0, len(keys))
	for k := range keys {
		row := LinkHealthRow{From: k[0], To: k[1]}
		if s, ok := r.goodput[k]; ok {
			row.Goodput, row.HasGoodput = s, true
			row.Stale = now >= 0 && now-s.At > staleAfter
		}
		if t := r.linkXfer[k]; t != nil {
			row.Transfers = *t
		}
		rows = append(rows, row)
	}
	r.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].From != rows[j].From {
			return rows[i].From < rows[j].From
		}
		return rows[i].To < rows[j].To
	})
	return rows
}

// StoreStats gauges one model's checkpoint/restore traffic through the
// daemon store: blob sizes (raw and wire) and restore latencies.
type StoreStats struct {
	Checkpoints int
	LastRaw     int   // latest blob's raw (decoded) bytes
	LastWire    int   // latest blob's wire bytes (post-codec)
	TotalRaw    int64 // cumulative raw bytes stored
	TotalWire   int64 // cumulative wire bytes stored
	WireHist    Histogram
	Restores    int
	LastRestore time.Duration // latest restore's virtual latency
	RestoreHist Histogram     // restore latency, nanoseconds
}

// RecordCheckpoint gauges one checkpoint blob landing in the daemon
// store: raw is the decoded snapshot size, wire the bytes that crossed
// the network (equal when no codec is configured).
func (r *Recorder) RecordCheckpoint(model string, raw, wire int) {
	r.mu.Lock()
	st := r.storeStats(model)
	st.Checkpoints++
	st.LastRaw, st.LastWire = raw, wire
	st.TotalRaw += int64(raw)
	st.TotalWire += int64(wire)
	st.WireHist.Record(int64(wire))
	r.mu.Unlock()
}

// RecordRestore gauges one model restore from the daemon store: latency
// is the virtual time the restore took end to end.
func (r *Recorder) RecordRestore(model string, latency time.Duration) {
	r.mu.Lock()
	st := r.storeStats(model)
	st.Restores++
	st.LastRestore = latency
	st.RestoreHist.Record(int64(latency))
	r.mu.Unlock()
}

// storeStats returns (creating if needed) the gauges for one model
// label. Callers hold r.mu.
func (r *Recorder) storeStats(model string) *StoreStats {
	if r.store == nil {
		r.store = make(map[string]*StoreStats)
	}
	st := r.store[model]
	if st == nil {
		st = &StoreStats{}
		r.store[model] = st
	}
	return st
}

// StoreRow is one model's store gauges.
type StoreRow struct {
	Model string
	Stats StoreStats
}

// StoreTable returns all store gauges (deep copies), sorted by model.
func (r *Recorder) StoreTable() []StoreRow {
	r.mu.Lock()
	rows := make([]StoreRow, 0, len(r.store))
	for m, st := range r.store {
		rows = append(rows, StoreRow{Model: m, Stats: *st})
	}
	r.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Model < rows[j].Model })
	return rows
}

// RecordCapacity gauges a resource's node occupancy (the deployment
// ledger reports it on every reserve/commit/release).
func (r *Recorder) RecordCapacity(resource string, occupied, total int) {
	r.mu.Lock()
	if r.capacity == nil {
		r.capacity = make(map[string][2]int)
	}
	r.capacity[resource] = [2]int{occupied, total}
	r.mu.Unlock()
}

// CapacityRow is one resource's occupancy gauge.
type CapacityRow struct {
	Resource        string
	Occupied, Total int
}

// CapacityTable returns the latest occupancy per resource, sorted.
func (r *Recorder) CapacityTable() []CapacityRow {
	r.mu.Lock()
	rows := make([]CapacityRow, 0, len(r.capacity))
	for res, v := range r.capacity {
		rows = append(rows, CapacityRow{Resource: res, Occupied: v[0], Total: v[1]})
	}
	r.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Resource < rows[j].Resource })
	return rows
}

// RenderHealth renders the overlay health roll-up: per-link goodput with
// staleness marking and transfer outcomes, then the store gauges, then
// the capacity gauges. now is the caller's virtual clock (negative
// disables staleness marking).
func (r *Recorder) RenderHealth(now time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-28s %14s %10s %7s %6s  %s\n",
		"FROM", "TO", "GOODPUT(MB/s)", "AT(ms)", "PROBES", "STATE", "TRANSFERS(dir/str/hp/fb/sfb)")
	for _, row := range r.LinkHealthTable(now, DefaultStaleAfter) {
		gp, at, probes, state := "-", "-", "-", "ok"
		if row.HasGoodput {
			gp = fmt.Sprintf("%.2f", row.Goodput.BytesPerSec/1e6)
			at = fmt.Sprintf("%.1f", float64(row.Goodput.At.Microseconds())/1e3)
			probes = fmt.Sprintf("%d", row.Goodput.Probes)
			if row.Stale {
				state = "STALE"
			}
		} else {
			state = "-"
		}
		t := row.Transfers
		fmt.Fprintf(&b, "%-28s %-28s %14s %10s %7s %6s  %d/%d/%d/%d/%d\n",
			row.From, row.To, gp, at, probes, state,
			t.Direct, t.Striped, t.Hairpin, t.Fallback, t.StripeFallback)
	}
	if rows := r.StoreTable(); len(rows) > 0 {
		fmt.Fprintf(&b, "\n%-14s %6s %12s %12s %12s %9s %14s\n",
			"STORE", "CKPTS", "LAST-RAW", "LAST-WIRE", "TOTAL-WIRE", "RESTORES", "RESTORE(p50/p99/max)")
		for _, row := range rows {
			st := row.Stats
			fmt.Fprintf(&b, "%-14s %6d %12d %12d %12d %9d %14s\n",
				row.Model, st.Checkpoints, st.LastRaw, st.LastWire, st.TotalWire,
				st.Restores, st.RestoreHist.summary())
		}
	}
	if rows := r.CapacityTable(); len(rows) > 0 {
		fmt.Fprintf(&b, "\n%-28s %9s %6s\n", "CAPACITY", "OCCUPIED", "TOTAL")
		for _, row := range rows {
			fmt.Fprintf(&b, "%-28s %9d %6d\n", row.Resource, row.Occupied, row.Total)
		}
	}
	return b.String()
}
