package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// The calibration loop (MONARC-style monitoring-driven simulation): the
// virtual-time model is configured with vnet link bandwidths and vtime
// channel costs; the observability plane measures what the live system
// actually achieves. Calibrate joins the two and reports drift, so a
// growing system can tell when its configured constants stopped being
// honest. core exposes it as Testbed.Calibrate (probing every configured
// edge) and cmd/jungle-bench as the `calibrate` experiment.

// LinkSpec is one configured directed edge: the vnet bandwidth the model
// charges for transfers on the from->to link.
type LinkSpec struct {
	From, To  string
	Bandwidth float64 // bytes/second
}

// LinkDrift compares one configured edge against its latest observed
// goodput sample. Drift is |observed-configured|/configured; Measured is
// false when the link has no goodput sample (drift is then meaningless).
type LinkDrift struct {
	From, To   string
	Configured float64
	Observed   float64
	Probes     int
	Drift      float64
	Measured   bool
}

// CallDrift compares one call key's observed latency against the
// configured vtime floor its channel recorded (2x routed path latency;
// the mpi message cost in-process). Drift is (min observed - floor)/floor
// — the part of the fastest round trip the network model does not
// explain (compute, queueing).
type CallDrift struct {
	CallKey
	Floor time.Duration
	Min   time.Duration
	P50   time.Duration
	Count uint64
	Drift float64
}

// Calibration is one calibration pass: every configured edge's drift and
// every floored call key's drift.
type Calibration struct {
	Links []LinkDrift
	Calls []CallDrift
}

// Calibrate compares the recorder's observations against the configured
// constants: each edge in links against its latest goodput sample, and
// each recorded call key that carries a channel floor against that floor.
func (r *Recorder) Calibrate(links []LinkSpec) Calibration {
	var c Calibration
	for _, spec := range links {
		d := LinkDrift{From: spec.From, To: spec.To, Configured: spec.Bandwidth}
		if s, ok := r.Goodput(spec.From, spec.To); ok {
			d.Observed, d.Probes, d.Measured = s.BytesPerSec, s.Probes, true
			if spec.Bandwidth > 0 {
				d.Drift = (d.Observed - spec.Bandwidth) / spec.Bandwidth
				if d.Drift < 0 {
					d.Drift = -d.Drift
				}
			}
		}
		c.Links = append(c.Links, d)
	}
	sort.Slice(c.Links, func(i, j int) bool {
		if c.Links[i].From != c.Links[j].From {
			return c.Links[i].From < c.Links[j].From
		}
		return c.Links[i].To < c.Links[j].To
	})
	for _, row := range r.CallTable() {
		if row.Stats.Floor <= 0 || row.Stats.Hist.Count == 0 {
			continue
		}
		min := time.Duration(row.Stats.Hist.Min)
		c.Calls = append(c.Calls, CallDrift{
			CallKey: row.CallKey,
			Floor:   row.Stats.Floor,
			Min:     min,
			P50:     time.Duration(row.Stats.Hist.Quantile(0.5)),
			Count:   row.Stats.Hist.Count,
			Drift:   float64(min-row.Stats.Floor) / float64(row.Stats.Floor),
		})
	}
	return c
}

// MaxLinkDrift returns the worst drift over the measured edges, and
// whether every configured edge was measured at all.
func (c Calibration) MaxLinkDrift() (worst float64, allMeasured bool) {
	allMeasured = true
	for _, d := range c.Links {
		if !d.Measured {
			allMeasured = false
			continue
		}
		if d.Drift > worst {
			worst = d.Drift
		}
	}
	return worst, allMeasured
}

// Render renders the calibration report: per-edge observed vs configured
// bandwidth with drift, then per-method observed latency vs channel
// floor.
func (c Calibration) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-28s %14s %14s %7s %8s\n",
		"FROM", "TO", "CONF(MB/s)", "OBS(MB/s)", "PROBES", "DRIFT")
	for _, d := range c.Links {
		if !d.Measured {
			fmt.Fprintf(&b, "%-28s %-28s %14.2f %14s %7d %8s\n",
				d.From, d.To, d.Configured/1e6, "-", 0, "unmeas")
			continue
		}
		fmt.Fprintf(&b, "%-28s %-28s %14.2f %14.2f %7d %7.1f%%\n",
			d.From, d.To, d.Configured/1e6, d.Observed/1e6, d.Probes, d.Drift*100)
	}
	if len(c.Calls) > 0 {
		fmt.Fprintf(&b, "\n%-12s %-14s %-18s %8s %10s %10s %10s %8s\n",
			"SESSION", "MODEL", "METHOD", "CALLS", "FLOOR", "MIN", "P50", "DRIFT")
		for _, d := range c.Calls {
			sess := d.Session
			if sess == "" {
				sess = "-"
			}
			fmt.Fprintf(&b, "%-12s %-14s %-18s %8d %10s %10s %10s %7.1f%%\n",
				sess, d.Model, d.Method, d.Count,
				d.Floor.Round(time.Microsecond), d.Min.Round(time.Microsecond),
				d.P50.Round(time.Microsecond), d.Drift*100)
		}
	}
	return b.String()
}
