package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRecorderConcurrentPlane hammers one Recorder from many goroutines —
// every write path of the observability plane racing every render and
// snapshot path — and then checks the exact totals. Run under -race (the
// Makefile's race target) this is the plane's thread-safety proof.
func TestRecorderConcurrentPlane(t *testing.T) {
	r := New()
	specs := []LinkSpec{{From: "a", To: "b", Bandwidth: 1e6}, {From: "b", To: "a", Bandwidth: 1e6}}
	const writers, iters = 8, 300
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sessions := []string{"", "s1", "s2"}
			methods := []string{"kick", "evolve", "get_state"}
			for i := 0; i < iters; i++ {
				sess := sessions[i%len(sessions)]
				meth := methods[i%len(methods)]
				r.RecordCall(sess, "gravity", meth, time.Duration(i+1)*time.Microsecond, 2*time.Microsecond)
				r.RecordCallError(sess, "hydro", meth)
				r.RecordQueueDepth("gravity/0@lgm", i%7)
				r.RecordLinkTransfer("a", "b", LinkDirect)
				r.RecordCheckpoint("gravity", 1000, 400)
				r.RecordRestore("gravity", time.Millisecond)
				r.RecordGoodput("a", "b", 1e6, time.Duration(i)*time.Millisecond)
				r.RecordCapacity("lgm", i%2, 1)
				r.SessionCall("s1")
				r.RecordTraffic("a", "b", "ipl", 1)
			}
		}(w)
	}
	// Readers race the writers over every view the plane renders.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = r.RenderCalls()
				_ = r.RenderHealth(-1)
				_ = r.RenderSessions()
				_ = r.CallsSnapshot()
				_ = r.QueueTable()
				_ = r.Calibrate(specs)
				_ = r.StoreTable()
				_ = r.CapacityTable()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	var calls, errs uint64
	for _, row := range r.CallTable() {
		calls += row.Stats.Hist.Count
		errs += row.Stats.Errors
	}
	if want := uint64(writers * iters); calls != want || errs != want {
		t.Fatalf("calls/errors = %d/%d, want %d each", calls, errs, want)
	}
	qt := r.QueueTable()
	if len(qt) != 1 || qt[0].Hist.Count != writers*iters {
		t.Fatalf("queue table %+v, want one worker with %d samples", qt, writers*iters)
	}
	rows := r.LinkHealthTable(-1, DefaultStaleAfter)
	if len(rows) != 1 || rows[0].Transfers.Direct != writers*iters {
		t.Fatalf("link health %+v, want %d direct transfers", rows, writers*iters)
	}
	st := r.StoreTable()
	if len(st) != 1 || st[0].Stats.Checkpoints != writers*iters || st[0].Stats.Restores != writers*iters {
		t.Fatalf("store gauges %+v", st)
	}
	if s, ok := r.Session("s1"); !ok || s.Calls != writers*iters {
		t.Fatalf("session calls %+v", s)
	}
	if got := r.Bytes("a", "b", "ipl"); got != writers*iters {
		t.Fatalf("traffic %d, want %d", got, writers*iters)
	}
}

// TestSnapshotsAreDeepCopies: every table/snapshot the plane hands out
// must be detached from the recorder — mutating a returned row must not
// leak back, and later recording must not mutate an earlier snapshot.
func TestSnapshotsAreDeepCopies(t *testing.T) {
	r := New()
	r.RecordCall("", "gravity", "kick", time.Millisecond, time.Microsecond)
	r.RecordQueueDepth("w0", 3)
	r.RecordCheckpoint("gravity", 10, 5)

	snap := r.CallsSnapshot()
	key := CallKey{Model: "gravity", Method: "kick"}
	before := snap[key].Hist.Count

	// Mutate everything the recorder handed out.
	rows := r.CallTable()
	rows[0].Stats.Hist.Record(1)
	rows[0].Stats.Errors = 99
	qrows := r.QueueTable()
	qrows[0].Hist.Record(100)
	srows := r.StoreTable()
	srows[0].Stats.WireHist.Record(7)

	// Record more and confirm the old snapshot kept its point-in-time view.
	r.RecordCall("", "gravity", "kick", 2*time.Millisecond, time.Microsecond)
	if snap[key].Hist.Count != before {
		t.Fatal("CallsSnapshot is not a deep copy: later recording mutated it")
	}
	if got := r.CallTable()[0].Stats; got.Errors != 0 || got.Hist.Count != 2 {
		t.Fatalf("mutating a CallTable row leaked into the recorder: %+v", got)
	}
	if got := r.QueueTable()[0].Hist.Count; got != 1 {
		t.Fatalf("mutating a QueueTable row leaked into the recorder: count %d", got)
	}
	if got := r.StoreTable()[0].Stats.WireHist.Count; got != 1 {
		t.Fatalf("mutating a StoreTable row leaked into the recorder: count %d", got)
	}
}

// TestRenderDeterminism: every Render*/Table output must be identical
// across repeated calls and independent of recording order — map
// iteration must never leak into the views.
func TestRenderDeterminism(t *testing.T) {
	build := func(reverse bool) *Recorder {
		r := New()
		type call struct{ sess, model, method string }
		calls := []call{
			{"", "gravity", "kick"}, {"s2", "hydro", "evolve"}, {"s1", "stellar", "setup"},
			{"", "coupling", "accept_state"}, {"s1", "gravity/r0", "kick"},
		}
		links := [][2]string{{"c", "d"}, {"a", "b"}, {"b", "a"}}
		if reverse {
			for i, j := 0, len(calls)-1; i < j; i, j = i+1, j-1 {
				calls[i], calls[j] = calls[j], calls[i]
			}
			links[0], links[2] = links[2], links[0]
		}
		// Per-key values derive from the key, not the insertion index, so
		// the two recorders hold identical data in different orders.
		for _, c := range calls {
			r.RecordCall(c.sess, c.model, c.method, time.Duration(len(c.method))*time.Millisecond, time.Microsecond)
			r.RecordQueueDepth(c.model+"/0@res", len(c.model))
		}
		for _, l := range links {
			r.RecordGoodput(l[0], l[1], float64(len(l[0]+l[1]))*1e6, time.Duration(len(l[0]))*time.Second)
			r.RecordLinkTransfer(l[0], l[1], LinkStriped)
		}
		r.RecordCheckpoint("hydro", 2, 1)
		r.RecordCheckpoint("gravity", 4, 2)
		r.RecordCapacity("vu", 1, 8)
		r.RecordCapacity("lgm", 0, 1)
		r.SessionState("s2", "running")
		r.SessionState("s1", "queued")
		return r
	}
	a, b := build(false), build(true)
	specs := []LinkSpec{{From: "b", To: "a", Bandwidth: 1e6}, {From: "a", To: "b", Bandwidth: 2e6}}
	views := []struct {
		name string
		fn   func(*Recorder) string
	}{
		{"RenderCalls", func(r *Recorder) string { return r.RenderCalls() }},
		{"RenderHealth", func(r *Recorder) string { return r.RenderHealth(5 * time.Second) }},
		{"RenderSessions", func(r *Recorder) string { return r.RenderSessions() }},
		{"RenderGoodput", func(r *Recorder) string { return r.RenderGoodput() }},
		{"RenderTraffic", func(r *Recorder) string { return r.RenderTraffic() }},
		{"Calibrate", func(r *Recorder) string { return r.Calibrate(specs).Render() }},
	}
	for _, v := range views {
		first := v.fn(a)
		if second := v.fn(a); second != first {
			t.Fatalf("%s not stable across calls:\n%s\nvs\n%s", v.name, first, second)
		}
		if other := v.fn(b); other != first {
			t.Fatalf("%s depends on recording order:\n%s\nvs\n%s", v.name, first, other)
		}
	}
	// Table orderings are the contract the renders build on.
	ct := a.CallTable()
	for i := 1; i < len(ct); i++ {
		p, q := ct[i-1], ct[i]
		if p.Session > q.Session || (p.Session == q.Session && p.Model > q.Model) {
			t.Fatalf("CallTable unsorted at %d: %+v", i, ct)
		}
	}
	lh := a.LinkHealthTable(-1, DefaultStaleAfter)
	for i := 1; i < len(lh); i++ {
		if lh[i-1].From > lh[i].From {
			t.Fatalf("LinkHealthTable unsorted: %+v", lh)
		}
	}
}

// TestLinkHealthStaleness: rows age out against the caller's clock, and a
// negative clock disables marking entirely.
func TestLinkHealthStaleness(t *testing.T) {
	r := New()
	r.RecordGoodput("a", "b", 1e6, time.Second)
	r.RecordGoodput("a", "c", 1e6, 10*time.Minute)
	r.RecordLinkTransfer("a", "d", LinkFallback) // transfers but never probed
	rows := r.LinkHealthTable(10*time.Minute, time.Minute)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if !rows[0].Stale || rows[1].Stale {
		t.Fatalf("staleness wrong: %+v", rows)
	}
	if rows[2].HasGoodput || rows[2].Transfers.Fallback != 1 {
		t.Fatalf("unprobed link row wrong: %+v", rows[2])
	}
	for _, row := range r.LinkHealthTable(-1, time.Minute) {
		if row.Stale {
			t.Fatalf("negative now must disable staleness: %+v", row)
		}
	}
	out := r.RenderHealth(10 * time.Minute)
	if !strings.Contains(out, "STALE") {
		t.Fatalf("render missing STALE marker:\n%s", out)
	}
}

// TestCalibrate: drift math against configured bandwidths and floors,
// unmeasured-edge reporting, and the roll-up MaxLinkDrift.
func TestCalibrate(t *testing.T) {
	r := New()
	r.RecordGoodput("a", "b", 0.95e6, time.Second) // 5% low
	r.RecordGoodput("b", "a", 1.2e6, time.Second)  // 20% high
	r.RecordCall("", "gravity", "kick", 110*time.Microsecond, 100*time.Microsecond)
	r.RecordCall("", "mpi", "kick", time.Millisecond, 0) // no floor: excluded
	specs := []LinkSpec{
		{From: "a", To: "b", Bandwidth: 1e6},
		{From: "b", To: "a", Bandwidth: 1e6},
		{From: "c", To: "d", Bandwidth: 1e6}, // never probed
	}
	cal := r.Calibrate(specs)
	if len(cal.Links) != 3 {
		t.Fatalf("links = %d, want 3", len(cal.Links))
	}
	byEdge := map[[2]string]LinkDrift{}
	for _, d := range cal.Links {
		byEdge[[2]string{d.From, d.To}] = d
	}
	if d := byEdge[[2]string{"a", "b"}]; !d.Measured || d.Drift < 0.049 || d.Drift > 0.051 {
		t.Fatalf("a->b drift %+v, want ~5%%", d)
	}
	if d := byEdge[[2]string{"b", "a"}]; d.Drift < 0.199 || d.Drift > 0.201 {
		t.Fatalf("b->a drift %+v, want ~20%% (absolute value of +20%%)", d)
	}
	if byEdge[[2]string{"c", "d"}].Measured {
		t.Fatal("unprobed edge must report Measured=false")
	}
	worst, all := cal.MaxLinkDrift()
	if all {
		t.Fatal("allMeasured must be false with an unprobed edge")
	}
	if worst < 0.199 || worst > 0.201 {
		t.Fatalf("worst drift %v, want ~0.2", worst)
	}
	if len(cal.Calls) != 1 || cal.Calls[0].Model != "gravity" {
		t.Fatalf("call drift rows %+v, want only the floored gravity key", cal.Calls)
	}
	if d := cal.Calls[0].Drift; d < 0.099 || d > 0.101 {
		t.Fatalf("call drift %v, want ~10%%", d)
	}
	out := cal.Render()
	if !strings.Contains(out, "unmeas") || !strings.Contains(out, "gravity") {
		t.Fatalf("calibration render incomplete:\n%s", out)
	}
}

// TestDiffCalls: the snapshot diff isolates exactly the calls recorded
// between the snapshots, across keys, including errors.
func TestDiffCalls(t *testing.T) {
	r := New()
	r.RecordCall("", "gravity", "kick", time.Millisecond, 0)
	r.RecordCallError("", "hydro", "evolve")
	before := r.CallsSnapshot()
	r.RecordCall("", "gravity", "kick", 3*time.Millisecond, 0)
	r.RecordCall("", "hydro", "evolve", 5*time.Millisecond, 0)
	r.RecordCallError("", "hydro", "evolve")
	sum := DiffCalls(before, r.CallsSnapshot())
	if sum.Calls != 2 || sum.Errors != 1 {
		t.Fatalf("diff = %+v, want 2 calls, 1 error", sum)
	}
	if sum.P50 < 3*time.Millisecond {
		t.Fatalf("diff p50 %v includes pre-snapshot samples", sum.P50)
	}
	if s := sum.String(); !strings.Contains(s, "2 calls") || !strings.Contains(s, "1 errors") {
		t.Fatalf("summary string %q", s)
	}
	empty := DiffCalls(nil, nil)
	if empty.Calls != 0 || empty.String() != "no calls" {
		t.Fatalf("empty diff = %+v %q", empty, empty.String())
	}
	// nil before: the whole recorder is the diff.
	whole := DiffCalls(nil, r.CallsSnapshot())
	if whole.Calls != 3 || whole.Errors != 2 {
		t.Fatalf("nil-before diff = %+v", whole)
	}
}

// TestRenderCallsContent: the rendered table carries the floor and the
// queue section, with "-" for the empty session label.
func TestRenderCallsContent(t *testing.T) {
	r := New()
	r.RecordCall("", "gravity", "kick", 4*time.Millisecond, 2*time.Millisecond)
	r.RecordQueueDepth("gravity/0@lgm", 2)
	out := r.RenderCalls()
	for _, want := range []string{"gravity", "kick", "2ms", "gravity/0@lgm", "FLOOR", "WORKER QUEUE"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RenderCalls missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("empty session must render as '-':\n%s", out)
	}
}

// TestSessionAccounting covers the remaining session counters end to end.
func TestSessionAccounting(t *testing.T) {
	r := New()
	r.SessionState("s1", "running")
	r.SessionWorkerDelta("s1", 4)
	r.SessionWorkerDelta("s1", -1)
	r.SessionTransfer("s1")
	r.SessionEviction("s1")
	r.SessionResume("s1")
	s, ok := r.Session("s1")
	if !ok || s.State != "running" || s.Workers != 3 || s.Transfers != 1 || s.Evictions != 1 || s.Resumes != 1 {
		t.Fatalf("session stats %+v", s)
	}
	if _, ok := r.Session("nope"); ok {
		t.Fatal("unknown session must report ok=false")
	}
	all := r.Sessions()
	if len(all) != 1 {
		t.Fatalf("sessions %+v", all)
	}
	out := r.RenderSessions()
	if !strings.Contains(out, "s1") || !strings.Contains(out, "running") {
		t.Fatalf("sessions render:\n%s", out)
	}
	if empty := New().RenderSessions(); !strings.Contains(empty, "(none)") {
		t.Fatalf("empty sessions render:\n%s", empty)
	}
}
