// Package trace implements the monitoring subsystem required by §4.3 of the
// paper ("it should be possible to do both performance and correctness
// monitoring of the system") and regenerates the data behind the IbisDeploy
// GUI views of Figures 10 and 11: the SmartSockets overlay map, the per-link
// traffic visualization (IPL vs MPI bytes) and per-node load.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event is a timestamped monitoring record.
type Event struct {
	At    time.Duration // virtual time
	Actor string
	Kind  string
	Text  string
}

// Recorder collects traffic, load and events. It satisfies
// vnet.TrafficRecorder. The zero value is not usable; call New.
type Recorder struct {
	mu      sync.Mutex
	traffic map[trafficKey]int
	load    map[string][]LoadSample
	events  []Event
}

type trafficKey struct {
	From, To, Class string
}

// LoadSample is a point-in-time CPU load observation for a host.
type LoadSample struct {
	At   time.Duration
	Load float64 // 0..1 per-host CPU utilization
}

// New returns an empty recorder.
func New() *Recorder {
	return &Recorder{
		traffic: make(map[trafficKey]int),
		load:    make(map[string][]LoadSample),
	}
}

// RecordTraffic implements vnet.TrafficRecorder.
func (r *Recorder) RecordTraffic(from, to, class string, bytes int) {
	r.mu.Lock()
	r.traffic[trafficKey{from, to, class}] += bytes
	r.mu.Unlock()
}

// RecordLoad stores a CPU utilization sample for a host.
func (r *Recorder) RecordLoad(host string, at time.Duration, load float64) {
	r.mu.Lock()
	r.load[host] = append(r.load[host], LoadSample{At: at, Load: load})
	r.mu.Unlock()
}

// RecordEvent appends a monitoring event.
func (r *Recorder) RecordEvent(at time.Duration, actor, kind, text string) {
	r.mu.Lock()
	r.events = append(r.events, Event{At: at, Actor: actor, Kind: kind, Text: text})
	r.mu.Unlock()
}

// Events returns a copy of all recorded events in insertion order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Bytes returns the traffic from->to for a class ("" sums all classes).
func (r *Recorder) Bytes(from, to, class string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if class != "" {
		return r.traffic[trafficKey{from, to, class}]
	}
	total := 0
	for k, v := range r.traffic {
		if k.From == from && k.To == to {
			total += v
		}
	}
	return total
}

// TotalByClass sums traffic over all host pairs per class.
func (r *Recorder) TotalByClass() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int)
	for k, v := range r.traffic {
		out[k.Class] += v
	}
	return out
}

// TrafficRow is one line of the Fig. 11-style traffic table.
type TrafficRow struct {
	From, To, Class string
	Bytes           int
}

// TrafficTable returns all traffic rows sorted by bytes descending, then
// lexicographically for determinism.
func (r *Recorder) TrafficTable() []TrafficRow {
	r.mu.Lock()
	defer r.mu.Unlock()
	rows := make([]TrafficRow, 0, len(r.traffic))
	for k, v := range r.traffic {
		rows = append(rows, TrafficRow{From: k.From, To: k.To, Class: k.Class, Bytes: v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Bytes != rows[j].Bytes {
			return rows[i].Bytes > rows[j].Bytes
		}
		a, b := rows[i], rows[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Class < b.Class
	})
	return rows
}

// MeanLoad returns the average recorded load for a host (0 if none).
func (r *Recorder) MeanLoad(host string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.load[host]
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s {
		sum += x.Load
	}
	return sum / float64(len(s))
}

// LoadHosts returns all hosts with load samples, sorted.
func (r *Recorder) LoadHosts() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	hosts := make([]string, 0, len(r.load))
	for h := range r.load {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

// RenderTraffic renders the Fig. 11-equivalent table: per-link bytes split
// by class (IPL traffic was shown blue, MPI orange in the GUI).
func (r *Recorder) RenderTraffic() string {
	rows := r.TrafficTable()
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-28s %-6s %12s\n", "FROM", "TO", "CLASS", "BYTES")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-28s %-28s %-6s %12d\n", row.From, row.To, row.Class, row.Bytes)
	}
	return b.String()
}

// RenderLoad renders the Fig. 11-equivalent load bars: mean CPU load per
// host. Hosts running GPU kernels show near-idle CPUs, as the paper notes.
func (r *Recorder) RenderLoad() string {
	hosts := r.LoadHosts()
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %6s  %s\n", "HOST", "LOAD", "")
	for _, h := range hosts {
		l := r.MeanLoad(h)
		bar := strings.Repeat("#", int(l*20+0.5))
		fmt.Fprintf(&b, "%-28s %5.1f%%  %s\n", h, l*100, bar)
	}
	return b.String()
}
