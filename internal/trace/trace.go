// Package trace implements the monitoring subsystem required by §4.3 of the
// paper ("it should be possible to do both performance and correctness
// monitoring of the system") and regenerates the data behind the IbisDeploy
// GUI views of Figures 10 and 11: the SmartSockets overlay map, the per-link
// traffic visualization (IPL vs MPI bytes) and per-node load.
//
// Beyond the paper's views, the package is the system's observability
// plane, default-on and allocation-light. The channel layer records every
// RPC's virtual round-trip latency and every worker's in-flight queue
// depth into lock-striped fixed-bucket histograms (hist.go, calls.go;
// RenderCalls). The SmartSockets goodput probes and the bulk-transfer
// outcome counters roll up into a per-link health table with staleness
// marking, alongside the daemon store's checkpoint-size and
// restore-latency gauges and the deployment's capacity gauges (health.go;
// RenderHealth). Calibrate (calibrate.go) closes the loop: it compares
// the observed goodput and latency against the configured vnet/vtime
// constants and reports drift, keeping the virtual-time model honest as
// the system grows.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event is a timestamped monitoring record.
type Event struct {
	At    time.Duration // virtual time
	Actor string
	Kind  string
	Text  string
}

// Recorder collects traffic, load and events. It satisfies
// vnet.TrafficRecorder. The zero value is not usable; call New.
type Recorder struct {
	mu      sync.Mutex
	traffic map[trafficKey]int
	load    map[string][]LoadSample
	goodput map[[2]string]GoodputSample
	events  []Event
	// sessions holds per-session control-plane accounting (sessions.go);
	// created lazily so single-tenant recorders pay nothing.
	sessions map[string]*SessionStats
	// gangs holds elastic-gang skew telemetry (gangs.go); lazy like
	// sessions.
	gangs map[string]*GangStats
	// linkXfer counts bulk-transfer outcomes per directed link, store
	// holds per-model checkpoint/restore gauges and capacity the latest
	// per-resource occupancy (health.go); all lazy.
	linkXfer map[[2]string]*LinkTransfers
	store    map[string]*StoreStats
	capacity map[string][2]int

	// callShards stripe the channel-layer call/queue-depth histograms
	// (calls.go) so concurrent channels contend per shard, not on mu.
	callShards [callStripes]callShard
}

type trafficKey struct {
	From, To, Class string
}

// GoodputSample is the most recent measured goodput for a directed link,
// as reported by the SmartSockets prober.
type GoodputSample struct {
	BytesPerSec float64
	At          time.Duration // virtual time of the measurement
	Probes      int           // how many measurements have been folded in
}

// LoadSample is a point-in-time CPU load observation for a host.
type LoadSample struct {
	At   time.Duration
	Load float64 // 0..1 per-host CPU utilization
}

// New returns an empty recorder.
func New() *Recorder {
	return &Recorder{
		traffic: make(map[trafficKey]int),
		load:    make(map[string][]LoadSample),
		goodput: make(map[[2]string]GoodputSample),
	}
}

// RecordGoodput implements vnet.GoodputRecorder: it stores the latest
// measured goodput for the directed from->to link.
func (r *Recorder) RecordGoodput(from, to string, bytesPerSec float64, at time.Duration) {
	r.mu.Lock()
	s := r.goodput[[2]string{from, to}]
	s.BytesPerSec, s.At = bytesPerSec, at
	s.Probes++
	r.goodput[[2]string{from, to}] = s
	r.mu.Unlock()
}

// Goodput returns the latest goodput sample for from->to; ok is false when
// the link has never been probed.
func (r *Recorder) Goodput(from, to string) (GoodputSample, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.goodput[[2]string{from, to}]
	return s, ok
}

// GoodputRow is one line of the link-health table.
type GoodputRow struct {
	From, To string
	Sample   GoodputSample
}

// GoodputTable returns all probed links sorted lexicographically.
func (r *Recorder) GoodputTable() []GoodputRow {
	r.mu.Lock()
	defer r.mu.Unlock()
	rows := make([]GoodputRow, 0, len(r.goodput))
	for k, v := range r.goodput {
		rows = append(rows, GoodputRow{From: k[0], To: k[1], Sample: v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].From != rows[j].From {
			return rows[i].From < rows[j].From
		}
		return rows[i].To < rows[j].To
	})
	return rows
}

// RenderGoodput renders the per-link health view: measured goodput per
// directed link with the virtual time of the last probe.
func (r *Recorder) RenderGoodput() string {
	rows := r.GoodputTable()
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-28s %14s %10s %7s\n", "FROM", "TO", "GOODPUT(MB/s)", "AT(ms)", "PROBES")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-28s %-28s %14.2f %10.1f %7d\n",
			row.From, row.To, row.Sample.BytesPerSec/1e6,
			float64(row.Sample.At.Microseconds())/1e3, row.Sample.Probes)
	}
	return b.String()
}

// RecordTraffic implements vnet.TrafficRecorder.
func (r *Recorder) RecordTraffic(from, to, class string, bytes int) {
	r.mu.Lock()
	r.traffic[trafficKey{from, to, class}] += bytes
	r.mu.Unlock()
}

// RecordLoad stores a CPU utilization sample for a host.
func (r *Recorder) RecordLoad(host string, at time.Duration, load float64) {
	r.mu.Lock()
	r.load[host] = append(r.load[host], LoadSample{At: at, Load: load})
	r.mu.Unlock()
}

// RecordEvent appends a monitoring event.
func (r *Recorder) RecordEvent(at time.Duration, actor, kind, text string) {
	r.mu.Lock()
	r.events = append(r.events, Event{At: at, Actor: actor, Kind: kind, Text: text})
	r.mu.Unlock()
}

// Events returns a copy of all recorded events in insertion order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Bytes returns the traffic from->to for a class ("" sums all classes).
func (r *Recorder) Bytes(from, to, class string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if class != "" {
		return r.traffic[trafficKey{from, to, class}]
	}
	total := 0
	for k, v := range r.traffic {
		if k.From == from && k.To == to {
			total += v
		}
	}
	return total
}

// TotalByClass sums traffic over all host pairs per class.
func (r *Recorder) TotalByClass() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int)
	for k, v := range r.traffic {
		out[k.Class] += v
	}
	return out
}

// TrafficRow is one line of the Fig. 11-style traffic table.
type TrafficRow struct {
	From, To, Class string
	Bytes           int
}

// TrafficTable returns all traffic rows sorted by bytes descending, then
// lexicographically for determinism.
func (r *Recorder) TrafficTable() []TrafficRow {
	r.mu.Lock()
	defer r.mu.Unlock()
	rows := make([]TrafficRow, 0, len(r.traffic))
	for k, v := range r.traffic {
		rows = append(rows, TrafficRow{From: k.From, To: k.To, Class: k.Class, Bytes: v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Bytes != rows[j].Bytes {
			return rows[i].Bytes > rows[j].Bytes
		}
		a, b := rows[i], rows[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Class < b.Class
	})
	return rows
}

// MeanLoad returns the average recorded load for a host (0 if none).
func (r *Recorder) MeanLoad(host string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.load[host]
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s {
		sum += x.Load
	}
	return sum / float64(len(s))
}

// LoadHosts returns all hosts with load samples, sorted.
func (r *Recorder) LoadHosts() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	hosts := make([]string, 0, len(r.load))
	for h := range r.load {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

// RenderTraffic renders the Fig. 11-equivalent table: per-link bytes split
// by class (IPL traffic was shown blue, MPI orange in the GUI).
func (r *Recorder) RenderTraffic() string {
	rows := r.TrafficTable()
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-28s %-6s %12s\n", "FROM", "TO", "CLASS", "BYTES")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-28s %-28s %-6s %12d\n", row.From, row.To, row.Class, row.Bytes)
	}
	return b.String()
}

// RenderLoad renders the Fig. 11-equivalent load bars: mean CPU load per
// host. Hosts running GPU kernels show near-idle CPUs, as the paper notes.
func (r *Recorder) RenderLoad() string {
	hosts := r.LoadHosts()
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %6s  %s\n", "HOST", "LOAD", "")
	for _, h := range hosts {
		l := r.MeanLoad(h)
		bar := strings.Repeat("#", int(l*20+0.5))
		fmt.Fprintf(&b, "%-28s %5.1f%%  %s\n", h, l*100, bar)
	}
	return b.String()
}
