package bridge

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/amuse/ic"
	"jungle/internal/phys/nbody"
	"jungle/internal/phys/sph"
	"jungle/internal/phys/stellar"
	"jungle/internal/phys/tree"
	"jungle/internal/vtime"
)

func cpuDev() *vtime.Device {
	return &vtime.Device{Name: "cpu", Kind: vtime.CPU, Gflops: 1, Cores: 4}
}

func gpuDev() *vtime.Device {
	return &vtime.Device{Name: "gpu", Kind: vtime.GPU, Gflops: 100, Cores: 1,
		LaunchLatency: 30 * time.Microsecond}
}

// testSystem builds a small embedded cluster with live nbody + sph models.
func testSystem(t *testing.T, nStars, nGas int) (*nbody.System, *sph.Gas) {
	t.Helper()
	stars, gas, err := ic.EmbeddedCluster(ic.ClusterSpec{
		Stars: nStars, Gas: nGas, GasFrac: 0.7, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	grav := nbody.NewSystem(nbody.NewCPUKernel(cpuDev()), 0.01)
	grav.SetParticles(stars)
	hydro := sph.New()
	if nGas > 0 {
		if err := hydro.SetParticles(gas); err != nil {
			t.Fatal(err)
		}
	}
	return grav, hydro
}

func TestNewValidation(t *testing.T) {
	grav, hydro := testSystem(t, 10, 20)
	if _, err := New(Config{Gas: hydro, DT: 0.1}); err != ErrNoStars {
		t.Fatalf("err = %v", err)
	}
	if _, err := New(Config{Stars: grav, DT: 0}); err != ErrBadDT {
		t.Fatalf("err = %v", err)
	}
	if _, err := New(Config{Stars: grav, Gas: hydro, DT: 0.1}); err != ErrNoCoupler {
		t.Fatalf("err = %v", err)
	}
	if _, err := New(Config{Stars: grav, Gas: hydro, DT: 0.1,
		Coupler: tree.NewFi(cpuDev())}); err != nil {
		t.Fatal(err)
	}
}

func TestStarsOnlyMatchesPlainNBody(t *testing.T) {
	stars := ic.Plummer(60, 13)
	a := nbody.NewSystem(nbody.NewCPUKernel(cpuDev()), 0.01)
	a.SetParticles(stars)
	b, err := New(Config{Stars: a, DT: 1.0 / 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.EvolveTo(context.Background(), 0.25); err != nil {
		t.Fatal(err)
	}

	ref := nbody.NewSystem(nbody.NewCPUKernel(cpuDev()), 0.01)
	ref.SetParticles(stars)
	// The bridge evolves in DT chunks; EvolveTo in the same chunks is
	// bitwise identical.
	for i := 1; i <= 4; i++ {
		if err := ref.EvolveTo(context.Background(), float64(i)/16); err != nil {
			t.Fatal(err)
		}
	}
	pa, pr := a.Positions(), ref.Positions()
	for i := range pa {
		if pa[i] != pr[i] {
			t.Fatalf("bridge-without-gas diverged at particle %d", i)
		}
	}
}

func TestCoupledEnergyConservation(t *testing.T) {
	grav, hydro := testSystem(t, 40, 200)
	b, err := New(Config{
		Stars: grav, Gas: hydro, Coupler: tree.NewFi(cpuDev()),
		DT: 1.0 / 64, Eps: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := func() float64 {
		ks, us := grav.Energy()
		kg, tg, ug := hydro.Energy()
		return ks + us + kg + tg + ug + b.CrossPotential(context.Background())
	}
	e0 := total()
	if err := b.EvolveTo(context.Background(), 0.125); err != nil {
		t.Fatal(err)
	}
	e1 := total()
	if rel := math.Abs((e1 - e0) / e0); rel > 0.05 {
		t.Fatalf("coupled energy drift %v", rel)
	}
	if b.Steps() != 8 {
		t.Fatalf("steps = %d", b.Steps())
	}
	if b.CouplerFlops() <= 0 {
		t.Fatal("no coupling flops")
	}
}

func TestCallSequenceMatchesFig7(t *testing.T) {
	// E6: one bridge step must produce the Fig. 7 calling sequence:
	// half kick (field evals + kicks), parallel evolve, half kick; stellar
	// evolution only on the n-th step.
	grav, hydro := testSystem(t, 10, 30)
	var calls []string
	b, err := New(Config{
		Stars: grav, Gas: hydro, Coupler: tree.NewOctgrav(gpuDev()),
		DT: 1.0 / 32, Eps: 0.05, StellarEvery: 2,
		Trace: func(c string) { calls = append(calls, c) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"bridge.step",
		"coupler.field gas->stars", "coupler.field stars->gas",
		"stars.kick", "gas.kick",
		"stars.evolve", // runs in parallel with gas.evolve (same line)
		"coupler.field gas->stars", "coupler.field stars->gas",
		"stars.kick", "gas.kick",
	}
	if len(calls) != len(want) {
		t.Fatalf("got %d calls:\n%s", len(calls), strings.Join(calls, "\n"))
	}
	for i, prefix := range want {
		if !strings.HasPrefix(calls[i], prefix) {
			t.Fatalf("call %d = %q, want prefix %q", i, calls[i], prefix)
		}
	}
	// The parallel evolve line mentions both models.
	if !strings.Contains(calls[5], "gas.evolve") {
		t.Fatalf("evolve call not parallel: %q", calls[5])
	}
	// Step 2 triggers stellar evolution (StellarEvery=2) — with no stellar
	// model configured nothing is appended, so configure one below instead.
	calls = nil
	pop, err := stellar.NewPopulation(stellar.New(), []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	ad, err := NewSSEAdapter(pop, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	b2grav, b2hydro := testSystem(t, 2, 30)
	b2, err := New(Config{
		Stars: b2grav, Gas: b2hydro, Coupler: tree.NewOctgrav(gpuDev()),
		DT: 1.0 / 32, Eps: 0.05, StellarEvery: 2, Stellar: ad,
		Trace: func(c string) { calls = append(calls, c) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, c := range calls {
		if strings.HasPrefix(c, "stellar.evolve") {
			t.Fatal("stellar evolved on step 1 with StellarEvery=2")
		}
	}
	calls = nil
	if err := b2.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range calls {
		if strings.HasPrefix(c, "stellar.evolve") {
			found = true
		}
	}
	if !found {
		t.Fatal("stellar did not evolve on the n-th step")
	}
}

func TestStellarMassLossReachesDynamics(t *testing.T) {
	// A 25 MSun star explodes within the run; its dynamical mass must drop.
	grav, hydro := testSystem(t, 3, 20)
	masses := []float64{25, 1, 1}
	// Use unit scales that make the massive star explode almost
	// immediately: MS lifetime of 25 MSun ~ 3.2 Myr; with 10 Myr per time
	// unit one bridge step of 1/4 covers it.
	pop, err := stellar.NewPopulation(stellar.New(), masses)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := NewSSEAdapter(pop, 10, 0.01) // 10 Myr per unit; 0.01 nbody per MSun
	if err != nil {
		t.Fatal(err)
	}
	m0 := grav.Masses()[0]
	b, err := New(Config{
		Stars: grav, Gas: hydro, Coupler: tree.NewFi(cpuDev()),
		DT: 0.25, Eps: 0.05, StellarEvery: 1, Stellar: ad,
		SNEnergy: 0.05, SNRadius: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	th0 := hydro.ThermalEnergy()
	if err := b.EvolveTo(context.Background(), 1.0); err != nil {
		t.Fatal(err)
	}
	if got := grav.Masses()[0]; got >= m0 {
		t.Fatalf("massive star mass %v did not drop from %v", got, m0)
	}
	if b.Supernovae() == 0 {
		t.Fatal("no supernova recorded")
	}
	if th1 := hydro.ThermalEnergy(); th1 <= th0 {
		t.Fatalf("supernova energy not injected: %v -> %v", th0, th1)
	}
}

func TestSSEAdapterValidation(t *testing.T) {
	pop, err := stellar.NewPopulation(stellar.New(), []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSSEAdapter(pop, 0, 1); err == nil {
		t.Fatal("zero time scale accepted")
	}
	if _, err := NewSSEAdapter(pop, 1, -1); err == nil {
		t.Fatal("negative mass scale accepted")
	}
}

func TestGasExpulsionStages(t *testing.T) {
	// A miniature E5: heat drives the gas out; the bound gas fraction must
	// fall and the cluster must expand — the Fig. 6 progression.
	if testing.Short() {
		t.Skip("long physics test")
	}
	grav, hydro := testSystem(t, 30, 300)
	masses := make([]float64, 30)
	for i := range masses {
		masses[i] = 1
	}
	masses[0], masses[1] = 25, 22 // two exploders
	pop, err := stellar.NewPopulation(stellar.New(), masses)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := NewSSEAdapter(pop, 5, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{
		Stars: grav, Gas: hydro, Coupler: tree.NewFi(cpuDev()),
		DT: 1.0 / 16, Eps: 0.05, StellarEvery: 2, Stellar: ad,
		SNEnergy: 0.5, SNRadius: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.EvolveTo(context.Background(), 1.5); err != nil {
		t.Fatal(err)
	}
	if b.Supernovae() < 2 {
		t.Fatalf("supernovae = %d", b.Supernovae())
	}
	// Gas mean radius must exceed the stars' (gas blown out).
	gasR := meanNorm(hydro.Positions())
	starR := meanNorm(grav.Positions())
	if gasR < starR {
		t.Fatalf("gas (r=%v) not expelled beyond stars (r=%v)", gasR, starR)
	}
}

func meanNorm(ps []data.Vec3) float64 {
	var sum float64
	for _, p := range ps {
		sum += p.Norm()
	}
	if len(ps) == 0 {
		return 0
	}
	return sum / float64(len(ps))
}
