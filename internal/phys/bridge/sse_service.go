package bridge

import (
	"context"
	"fmt"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/core/kernel"
	"jungle/internal/phys/stellar"
	"jungle/internal/vtime"
)

// KindStellar is the worker kind this package registers: the SSE
// equivalent. The adapter lives here (not in internal/phys/stellar)
// because the worker speaks N-body units and the unit conversion is this
// package's SSEAdapter.
const KindStellar = "stellar"

func init() {
	kernel.Register(KindStellar, newStellarService)
}

// stellarService hosts the SSE worker ("nearly trivial" lookups — no
// device model needed beyond a tiny per-call cost).
type stellarService struct {
	clock   *vtime.Clock
	adapter *SSEAdapter
}

func newStellarService(kernel.Config) (kernel.Service, error) {
	return &stellarService{clock: vtime.NewClock()}, nil
}

func (s *stellarService) Close() {}

func (s *stellarService) Dispatch(method string, args []byte, at time.Duration) ([]byte, time.Duration, error) {
	s.clock.AdvanceTo(at)
	switch method {
	case "setup":
		var a kernel.SetupStellarArgs
		if err := kernel.Decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		pop, err := stellar.NewPopulation(stellar.New(), a.MassesMSun)
		if err != nil {
			return nil, s.clock.Now(), err
		}
		ad, err := NewSSEAdapter(pop, a.MyrPerTime, a.NBodyPerMSun)
		if err != nil {
			return nil, s.clock.Now(), err
		}
		s.adapter = ad
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case "evolve":
		var a kernel.EvolveArgs
		if err := kernel.Decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		events, err := s.adapter.EvolveTo(context.Background(), a.T)
		if err != nil {
			return nil, s.clock.Now(), err
		}
		out := kernel.StellarEvolveResult{}
		for _, ev := range events {
			out.Events = append(out.Events, kernel.StellarEventPayload{
				Index: ev.Index, MassLoss: ev.MassLoss, SN: ev.SN,
			})
		}
		s.clock.Advance(time.Duration(len(s.adapter.Pop.Stars)) * 200 * time.Nanosecond)
		return kernel.Encode(out), s.clock.Now(), nil
	case "get_state":
		q, err := kernel.UnmarshalStateRequest(args)
		if err != nil {
			return nil, s.clock.Now(), err
		}
		out, err := s.gatherState(q.Attrs)
		return out, s.clock.Now(), err
	case "stats":
		n := 0
		if s.adapter != nil {
			n = len(s.adapter.Pop.Stars)
		}
		return kernel.Encode(kernel.StatsResult{N: n}), s.clock.Now(), nil
	case kernel.MethodCheckpoint, kernel.MethodRestore:
		out, err := kernel.ServeCheckpoint(s, method, args)
		return out, s.clock.Now(), err
	default:
		return nil, s.clock.Now(), fmt.Errorf("%w: stellar.%s", kernel.ErrNoSuchMethod, method)
	}
}

// stellarExtra is the SSE worker's snapshot payload: per-star evolving
// state has no natural columnar shape (types, supernova flags), so the
// whole population rides the kind-private blob.
type stellarExtra struct {
	Stars      []stellar.Star
	TimeMyr    float64
	Supernovae int
}

// Snapshot implements kernel.Checkpointable.
func (s *stellarService) Snapshot() (*kernel.Snapshot, error) {
	if s.adapter == nil {
		return nil, fmt.Errorf("bridge: stellar checkpoint before setup")
	}
	pop := s.adapter.Pop
	return &kernel.Snapshot{
		Kind: KindStellar, Model: pop.Time() / s.adapter.MyrPerTime,
		VTime: s.clock.Now(),
		Extra: kernel.Encode(stellarExtra{
			Stars: pop.Stars, TimeMyr: pop.Time(), Supernovae: pop.Supernovae(),
		}),
	}, nil
}

// Restore implements kernel.Checkpointable. Setup must have run (it
// builds the SSE parameterization and unit scales); the population's
// evolving state is replaced wholesale.
func (s *stellarService) Restore(snap *kernel.Snapshot) error {
	if err := snap.CheckKind(KindStellar); err != nil {
		return err
	}
	if s.adapter == nil {
		return fmt.Errorf("bridge: stellar restore before setup")
	}
	var ex stellarExtra
	if err := kernel.Decode(snap.Extra, &ex); err != nil {
		return err
	}
	s.adapter.Pop.Restore(ex.Stars, ex.TimeMyr, ex.Supernovae)
	return nil
}

// gatherState assembles observable columns. Masses come out in N-body
// units (the adapter's conversion); observables keep their physical units
// (RSun, LSun, K, Myr).
func (s *stellarService) gatherState(attrs []string) ([]byte, error) {
	if s.adapter == nil {
		return nil, fmt.Errorf("bridge: stellar get_state before setup")
	}
	stars := s.adapter.Pop.Stars
	if len(attrs) == 0 {
		attrs = []string{data.AttrMass}
	}
	st := kernel.NewState(len(stars))
	for _, a := range attrs {
		col := make([]float64, len(stars))
		switch a {
		case data.AttrMass:
			for i := range stars {
				col[i] = stars[i].Mass * s.adapter.NBodyPerMSun
			}
		case data.AttrRadius:
			for i := range stars {
				col[i] = stars[i].Radius
			}
		case data.AttrLuminosity:
			for i := range stars {
				col[i] = stars[i].Luminosity
			}
		case data.AttrTemperature:
			for i := range stars {
				col[i] = stars[i].Temperature
			}
		case data.AttrAge:
			for i := range stars {
				col[i] = stars[i].Age
			}
		case data.AttrStellarType:
			for i := range stars {
				col[i] = float64(stars[i].Type)
			}
		default:
			return nil, fmt.Errorf("bridge: get_state: unknown attribute %q", a)
		}
		st.AddFloat(a, col)
	}
	return kernel.MarshalState(st)
}
