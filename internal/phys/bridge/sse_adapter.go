package bridge

import (
	"context"
	"fmt"

	"jungle/internal/phys/stellar"
)

// SSEAdapter connects a stellar.Population (which works in MSun and Myr) to
// the bridge (which works in N-body units): the unit conversions the AMUSE
// coupler performs around every stellar-evolution exchange.
type SSEAdapter struct {
	Pop *stellar.Population
	// MyrPerTime converts bridge time units to Myr.
	MyrPerTime float64
	// NBodyPerMSun converts solar masses to N-body mass units.
	NBodyPerMSun float64
}

// NewSSEAdapter validates scales and returns the adapter.
func NewSSEAdapter(pop *stellar.Population, myrPerTime, nbodyPerMSun float64) (*SSEAdapter, error) {
	if myrPerTime <= 0 || nbodyPerMSun <= 0 {
		return nil, fmt.Errorf("bridge: non-positive unit scales (%v Myr/t, %v nbody/MSun)",
			myrPerTime, nbodyPerMSun)
	}
	return &SSEAdapter{Pop: pop, MyrPerTime: myrPerTime, NBodyPerMSun: nbodyPerMSun}, nil
}

// EvolveTo implements Stellar. The SSE lookups are effectively free, so
// the context is only checked on entry.
func (a *SSEAdapter) EvolveTo(ctx context.Context, t float64) ([]StellarEvent, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	loss := a.Pop.EvolveTo(t * a.MyrPerTime)
	var events []StellarEvent
	for i, dm := range loss {
		sn := a.Pop.Stars[i].Supernova
		if dm > 0 || sn {
			events = append(events, StellarEvent{
				Index:    i,
				MassLoss: dm * a.NBodyPerMSun,
				SN:       sn,
			})
		}
	}
	return events, nil
}
