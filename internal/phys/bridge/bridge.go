// Package bridge implements the paper's Fig. 7 coupled integrator: the
// AMUSE gravitational/hydro/stellar solver for the embedded-star-cluster
// simulation (Pelupessy & Portegies Zwart 2011). Per bridge step the gas and
// stellar-dynamics models receive half-step cross-gravity kicks ("p-kicks",
// computed by the coupling model — Octgrav or Fi), evolve independently in
// parallel, and receive the closing half-kick; stellar evolution runs at a
// slower cadence, every n-th step, feeding mass loss back into the dynamics
// and injecting supernova energy into the gas.
//
// The integrator is latency-aware in the way the paper's distributed AMUSE
// daemon is: every model method takes a context, and models that expose the
// asynchronous interfaces (AsyncDynamics, AsyncField — core's remote worker
// proxies do) have their per-phase calls issued to all models before the
// bridge waits on any of them. A kick phase over K remote models then costs
// about one wide-area round trip instead of K.
package bridge

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"jungle/internal/amuse/data"
)

// Dynamics is the contract the bridge needs from a dynamical model (the
// nbody and sph systems implement it; the core package's remote-worker
// proxies implement it over RPC). The context bounds the call: in-process
// models poll it between integration steps, remote proxies use it to
// abort the wait on an in-flight RPC.
type Dynamics interface {
	// EvolveTo advances the model to the given model time.
	EvolveTo(ctx context.Context, t float64) error
	// Kick applies per-particle velocity increments.
	Kick(ctx context.Context, dv []data.Vec3) error
	// Positions returns current positions (length N).
	Positions() []data.Vec3
	// Masses returns current masses (length N).
	Masses() []float64
	// N returns the particle count.
	N() int
}

// Waiter is a pending asynchronous operation — the future half of the
// coupler's split-phase calls (*core.Call satisfies it).
type Waiter interface {
	// Wait blocks until the operation completes or ctx is done. A context
	// error abandons only the wait: the operation itself stays in flight
	// and its resources are reclaimed when it eventually completes.
	Wait(ctx context.Context) error
}

// AsyncDynamics is implemented by dynamics models whose calls can be
// issued without waiting (core's remote worker proxies). The bridge uses
// it to put every model's kick and evolve on the wire before waiting, so
// wide-area latency is paid once per phase, not once per model.
type AsyncDynamics interface {
	Dynamics
	GoEvolveTo(t float64) Waiter
	GoKick(dv []data.Vec3) Waiter
}

// MassSettable is implemented by dynamics models that accept external mass
// updates (stellar mass loss).
type MassSettable interface {
	SetMass(i int, m float64)
}

// EnergyInjector is implemented by gas models that accept supernova
// feedback.
type EnergyInjector interface {
	InjectEnergy(center data.Vec3, radius, e float64) int
}

// Field is the coupling model: it evaluates the gravitational field of a
// source set at target points (tree.Kernel implements it).
type Field interface {
	Name() string
	FieldAt(ctx context.Context, srcMass []float64, srcPos, targets []data.Vec3, eps float64) ([]data.Vec3, []float64, float64)
}

// FieldCall is a pending field evaluation.
type FieldCall interface {
	Wait(ctx context.Context) (acc []data.Vec3, pot []float64, flops float64, err error)
}

// AsyncField is implemented by coupling models that can pipeline field
// evaluations (core's remote field proxy): both p-kick directions are
// issued back to back and travel the wide-area link together.
type AsyncField interface {
	Field
	GoFieldAt(srcMass []float64, srcPos, targets []data.Vec3, eps float64) FieldCall
}

// DirectField is implemented by coupling models that can pull both field
// inputs straight from the peer models' workers over a direct data plane
// (core's FieldModel): the source columns and target positions move
// worker-to-worker, and the bridge never samples them into the coupler —
// a kick phase stops hairpinning bulk state through the user's machine.
// Implementations fall back internally when a peer path is unavailable,
// so the bridge may always prefer this interface.
type DirectField interface {
	Field
	// GoFieldDirect evaluates the field of src's particles at tgt's
	// positions, staging both inputs on the coupling worker.
	GoFieldDirect(src, tgt Dynamics) FieldCall
}

// StellarEvent describes a supernova delivered to the bridge.
type StellarEvent struct {
	Index    int     // star index
	MassLoss float64 // N-body mass lost this update
	SN       bool
}

// Stellar is the contract for the stellar-evolution model: advance to a
// model time (bridge units) and report per-star mass loss and supernovae.
type Stellar interface {
	EvolveTo(ctx context.Context, t float64) ([]StellarEvent, error)
}

// Config assembles a Bridge.
type Config struct {
	Stars   Dynamics
	Gas     Dynamics // optional
	Coupler Field    // required when Gas is present
	Stellar Stellar  // optional

	// DT is the bridge (coupling) timestep in N-body time units.
	DT float64
	// Eps is the coupling softening.
	Eps float64
	// StellarEvery runs stellar evolution every n-th bridge step (Fig. 7's
	// "slower rate"; default 4).
	StellarEvery int
	// SNEnergy is the thermal energy injected per supernova (N-body units).
	SNEnergy float64
	// SNRadius is the deposition radius around the exploding star.
	SNRadius float64
	// Trace receives the integrator call sequence (E6/Fig. 7 validation);
	// may be nil.
	Trace func(call string)
}

// Bridge is the coupled integrator.
type Bridge struct {
	cfg   Config
	time  float64
	steps int
	flops float64 // coupling-field flops

	supernovae int
}

// Errors.
var (
	ErrNoStars   = errors.New("bridge: stars model required")
	ErrNoCoupler = errors.New("bridge: coupler required when gas is present")
	ErrBadDT     = errors.New("bridge: DT must be positive")
)

// New validates the configuration and returns a Bridge.
func New(cfg Config) (*Bridge, error) {
	if cfg.Stars == nil {
		return nil, ErrNoStars
	}
	if cfg.DT <= 0 {
		return nil, ErrBadDT
	}
	if cfg.Gas != nil && cfg.Gas.N() > 0 && cfg.Coupler == nil {
		return nil, ErrNoCoupler
	}
	if cfg.StellarEvery <= 0 {
		cfg.StellarEvery = 4
	}
	if cfg.SNRadius <= 0 {
		cfg.SNRadius = 0.2
	}
	return &Bridge{cfg: cfg}, nil
}

// Time returns the bridge model time.
func (b *Bridge) Time() float64 { return b.time }

// Steps returns completed bridge steps.
func (b *Bridge) Steps() int { return b.steps }

// Supernovae returns the cumulative supernova count seen by the bridge.
func (b *Bridge) Supernovae() int { return b.supernovae }

// RestoreClock rewinds (or forwards) the bridge's integration bookkeeping
// to a checkpoint's values: model time, completed step count and the
// cumulative supernova tally. The models themselves are restored
// separately (core's checkpoint/restore subsystem); with both in place a
// resumed coupled run continues bit-compatibly — the next Step picks up
// the stellar cadence exactly where the killed run left it.
func (b *Bridge) RestoreClock(t float64, steps, supernovae int) {
	b.time = t
	b.steps = steps
	b.supernovae = supernovae
}

// CouplerFlops returns the accumulated coupling-field flop count.
func (b *Bridge) CouplerFlops() float64 { return b.flops }

// ResetCouplerFlops zeroes the counter and returns the prior value.
func (b *Bridge) ResetCouplerFlops() float64 {
	f := b.flops
	b.flops = 0
	return f
}

func (b *Bridge) trace(format string, args ...any) {
	if b.cfg.Trace != nil {
		b.cfg.Trace(fmt.Sprintf(format, args...))
	}
}

func (b *Bridge) hasGas() bool { return b.cfg.Gas != nil && b.cfg.Gas.N() > 0 }

// sample reads a dynamical model's field inputs (two RPCs when remote).
type sample struct {
	mass []float64
	pos  []data.Vec3
}

// sampleBoth fetches both models' masses and positions concurrently — one
// goroutine per model, so two remote models answer in parallel. The
// read-only getters are session-scoped by the Dynamics interface, so a
// per-step context cannot abort this sampling phase; Step documents the
// limitation.
func sampleBoth(stars, gas Dynamics) (ss, gs sample) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		ss = sample{mass: stars.Masses(), pos: stars.Positions()}
	}()
	go func() {
		defer wg.Done()
		gs = sample{mass: gas.Masses(), pos: gas.Positions()}
	}()
	wg.Wait()
	return ss, gs
}

// kick applies half-step cross-gravity kicks in both directions — the
// "p-kick" boxes of Fig. 7. Both field evaluations, then both kicks, are
// in flight before the bridge waits on either.
func (b *Bridge) kick(ctx context.Context, dt float64) error {
	if !b.hasGas() {
		return nil
	}
	stars, gas, cpl := b.cfg.Stars, b.cfg.Gas, b.cfg.Coupler
	if err := ctx.Err(); err != nil {
		return err
	}

	var accS, accG []data.Vec3
	var f1, f2 float64
	if dcpl, ok := cpl.(DirectField); ok {
		// Direct data plane: both directions' inputs move worker-to-worker
		// (gas state to the coupling worker, star positions likewise) and
		// the coupler never holds the columns — the bulk never crosses the
		// user's uplink.
		b.trace("coupler.field gas->stars (%s, direct)", cpl.Name())
		c1 := dcpl.GoFieldDirect(gas, stars)
		b.trace("coupler.field stars->gas (%s, direct)", cpl.Name())
		c2 := dcpl.GoFieldDirect(stars, gas)
		var err1, err2 error
		accS, _, f1, err1 = c1.Wait(ctx)
		accG, _, f2, err2 = c2.Wait(ctx)
		if err1 != nil {
			return fmt.Errorf("bridge: field gas->stars: %w", err1)
		}
		if err2 != nil {
			return fmt.Errorf("bridge: field stars->gas: %w", err2)
		}
	} else if acpl, ok := cpl.(AsyncField); ok {
		ss, gs := sampleBoth(stars, gas)
		b.trace("coupler.field gas->stars (%s)", cpl.Name())
		c1 := acpl.GoFieldAt(gs.mass, gs.pos, ss.pos, b.cfg.Eps)
		b.trace("coupler.field stars->gas (%s)", cpl.Name())
		c2 := acpl.GoFieldAt(ss.mass, ss.pos, gs.pos, b.cfg.Eps)
		var err1, err2 error
		accS, _, f1, err1 = c1.Wait(ctx)
		accG, _, f2, err2 = c2.Wait(ctx)
		if err1 != nil {
			return fmt.Errorf("bridge: field gas->stars: %w", err1)
		}
		if err2 != nil {
			return fmt.Errorf("bridge: field stars->gas: %w", err2)
		}
	} else {
		ss, gs := sampleBoth(stars, gas)
		b.trace("coupler.field gas->stars (%s)", cpl.Name())
		accS, _, f1 = cpl.FieldAt(ctx, gs.mass, gs.pos, ss.pos, b.cfg.Eps)
		b.trace("coupler.field stars->gas (%s)", cpl.Name())
		accG, _, f2 = cpl.FieldAt(ctx, ss.mass, ss.pos, gs.pos, b.cfg.Eps)
	}
	b.flops += f1 + f2

	for i := range accS {
		accS[i] = accS[i].Scale(dt)
	}
	for i := range accG {
		accG[i] = accG[i].Scale(dt)
	}

	as, aok := stars.(AsyncDynamics)
	ag, gok := gas.(AsyncDynamics)
	if aok && gok {
		b.trace("stars.kick dt=%g", dt)
		ws := as.GoKick(accS)
		b.trace("gas.kick dt=%g", dt)
		wg := ag.GoKick(accG)
		if err := ws.Wait(ctx); err != nil {
			return fmt.Errorf("bridge: star kick: %w", err)
		}
		if err := wg.Wait(ctx); err != nil {
			return fmt.Errorf("bridge: gas kick: %w", err)
		}
		return nil
	}
	b.trace("stars.kick dt=%g", dt)
	if err := stars.Kick(ctx, accS); err != nil {
		return fmt.Errorf("bridge: star kick: %w", err)
	}
	b.trace("gas.kick dt=%g", dt)
	if err := gas.Kick(ctx, accG); err != nil {
		return fmt.Errorf("bridge: gas kick: %w", err)
	}
	return nil
}

// evolve advances both models to time t concurrently — the parallel
// "evolve" circles of Fig. 7. Async-capable pairs are pipelined (both
// evolve calls on the wire before waiting); plain models fall back to one
// goroutine each.
func (b *Bridge) evolve(ctx context.Context, t float64) error {
	if !b.hasGas() {
		b.trace("stars.evolve t=%g", t)
		return b.cfg.Stars.EvolveTo(ctx, t)
	}
	b.trace("stars.evolve t=%g || gas.evolve t=%g", t, t)
	var errS, errG error
	as, aok := b.cfg.Stars.(AsyncDynamics)
	ag, gok := b.cfg.Gas.(AsyncDynamics)
	if aok && gok {
		ws, wg := as.GoEvolveTo(t), ag.GoEvolveTo(t)
		errS, errG = ws.Wait(ctx), wg.Wait(ctx)
	} else {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			errS = b.cfg.Stars.EvolveTo(ctx, t)
		}()
		go func() {
			defer wg.Done()
			errG = b.cfg.Gas.EvolveTo(ctx, t)
		}()
		wg.Wait()
	}
	if errS != nil {
		return fmt.Errorf("bridge: star evolve: %w", errS)
	}
	if errG != nil {
		return fmt.Errorf("bridge: gas evolve: %w", errG)
	}
	return nil
}

// stellarUpdate runs stellar evolution to the current bridge time and
// pushes mass loss and supernova feedback into the dynamical models.
func (b *Bridge) stellarUpdate(ctx context.Context) error {
	if b.cfg.Stellar == nil {
		return nil
	}
	b.trace("stellar.evolve t=%g", b.time)
	events, err := b.cfg.Stellar.EvolveTo(ctx, b.time)
	if err != nil {
		return fmt.Errorf("bridge: stellar evolve: %w", err)
	}
	ms, settable := b.cfg.Stars.(MassSettable)
	masses := b.cfg.Stars.Masses()
	positions := b.cfg.Stars.Positions()
	injector, canInject := b.cfg.Gas.(EnergyInjector)
	for _, ev := range events {
		if ev.Index < 0 || ev.Index >= len(masses) {
			return fmt.Errorf("bridge: stellar event index %d out of range", ev.Index)
		}
		if ev.MassLoss > 0 && settable {
			b.trace("stars.set_mass i=%d dm=%g", ev.Index, ev.MassLoss)
			ms.SetMass(ev.Index, masses[ev.Index]-ev.MassLoss)
		}
		if ev.SN {
			b.supernovae++
			if b.hasGas() && canInject && b.cfg.SNEnergy > 0 {
				b.trace("gas.inject_energy i=%d e=%g", ev.Index, b.cfg.SNEnergy)
				injector.InjectEnergy(positions[ev.Index], b.cfg.SNRadius, b.cfg.SNEnergy)
			}
		}
	}
	return nil
}

// Step advances the coupled system by one bridge step DT: the Fig. 7
// sequence kick(dt/2) → parallel evolve(dt) → kick(dt/2), with stellar
// evolution every StellarEvery-th step. The context cancels or bounds
// every mutating call of the step; a context error leaves the models
// consistent with the last completed phase. One caveat: the kick phase's
// read-only state sampling (Masses/Positions) runs under each model's
// session context — a per-step deadline takes effect from the first
// field evaluation onward.
func (b *Bridge) Step(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	dt := b.cfg.DT
	b.trace("bridge.step t=%g", b.time)
	if err := b.kick(ctx, dt/2); err != nil {
		return err
	}
	if err := b.evolve(ctx, b.time+dt); err != nil {
		return err
	}
	if err := b.kick(ctx, dt/2); err != nil {
		return err
	}
	b.time += dt
	b.steps++
	if b.steps%b.cfg.StellarEvery == 0 {
		if err := b.stellarUpdate(ctx); err != nil {
			return err
		}
	}
	return nil
}

// EvolveTo runs bridge steps until the model time reaches t (the last step
// may overshoot by less than DT; bridge steps are fixed-size as in Fig. 7).
func (b *Bridge) EvolveTo(ctx context.Context, t float64) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for b.time < t-1e-15 {
		if err := b.Step(ctx); err != nil {
			return err
		}
	}
	return nil
}

// CrossPotential returns the star↔gas interaction energy Σ m_i φ_gas(x_i),
// used by the energy diagnostics (counted against the coupler's flops).
func (b *Bridge) CrossPotential(ctx context.Context) float64 {
	if !b.hasGas() {
		return 0
	}
	if ctx == nil {
		ctx = context.Background()
	}
	stars, gas := b.cfg.Stars, b.cfg.Gas
	_, pot, f := b.cfg.Coupler.FieldAt(ctx, gas.Masses(), gas.Positions(), stars.Positions(), b.cfg.Eps)
	b.flops += f
	var u float64
	masses := stars.Masses()
	for i := range pot {
		u += masses[i] * pot[i]
	}
	return u
}
