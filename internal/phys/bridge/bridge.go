// Package bridge implements the paper's Fig. 7 coupled integrator: the
// AMUSE gravitational/hydro/stellar solver for the embedded-star-cluster
// simulation (Pelupessy & Portegies Zwart 2011). Per bridge step the gas and
// stellar-dynamics models receive half-step cross-gravity kicks ("p-kicks",
// computed by the coupling model — Octgrav or Fi), evolve independently in
// parallel, and receive the closing half-kick; stellar evolution runs at a
// slower cadence, every n-th step, feeding mass loss back into the dynamics
// and injecting supernova energy into the gas.
package bridge

import (
	"errors"
	"fmt"
	"sync"

	"jungle/internal/amuse/data"
)

// Dynamics is the contract the bridge needs from a dynamical model (the
// nbody and sph systems implement it; the core package's remote-worker
// proxies implement it over RPC).
type Dynamics interface {
	// EvolveTo advances the model to the given model time.
	EvolveTo(t float64) error
	// Kick applies per-particle velocity increments.
	Kick(dv []data.Vec3) error
	// Positions returns current positions (length N).
	Positions() []data.Vec3
	// Masses returns current masses (length N).
	Masses() []float64
	// N returns the particle count.
	N() int
}

// MassSettable is implemented by dynamics models that accept external mass
// updates (stellar mass loss).
type MassSettable interface {
	SetMass(i int, m float64)
}

// EnergyInjector is implemented by gas models that accept supernova
// feedback.
type EnergyInjector interface {
	InjectEnergy(center data.Vec3, radius, e float64) int
}

// Field is the coupling model: it evaluates the gravitational field of a
// source set at target points (tree.Kernel implements it).
type Field interface {
	Name() string
	FieldAt(srcMass []float64, srcPos, targets []data.Vec3, eps float64) ([]data.Vec3, []float64, float64)
}

// StellarEvent describes a supernova delivered to the bridge.
type StellarEvent struct {
	Index    int     // star index
	MassLoss float64 // N-body mass lost this update
	SN       bool
}

// Stellar is the contract for the stellar-evolution model: advance to a
// model time (bridge units) and report per-star mass loss and supernovae.
type Stellar interface {
	EvolveTo(t float64) ([]StellarEvent, error)
}

// Config assembles a Bridge.
type Config struct {
	Stars   Dynamics
	Gas     Dynamics // optional
	Coupler Field    // required when Gas is present
	Stellar Stellar  // optional

	// DT is the bridge (coupling) timestep in N-body time units.
	DT float64
	// Eps is the coupling softening.
	Eps float64
	// StellarEvery runs stellar evolution every n-th bridge step (Fig. 7's
	// "slower rate"; default 4).
	StellarEvery int
	// SNEnergy is the thermal energy injected per supernova (N-body units).
	SNEnergy float64
	// SNRadius is the deposition radius around the exploding star.
	SNRadius float64
	// Trace receives the integrator call sequence (E6/Fig. 7 validation);
	// may be nil.
	Trace func(call string)
}

// Bridge is the coupled integrator.
type Bridge struct {
	cfg   Config
	time  float64
	steps int
	flops float64 // coupling-field flops

	supernovae int
}

// Errors.
var (
	ErrNoStars   = errors.New("bridge: stars model required")
	ErrNoCoupler = errors.New("bridge: coupler required when gas is present")
	ErrBadDT     = errors.New("bridge: DT must be positive")
)

// New validates the configuration and returns a Bridge.
func New(cfg Config) (*Bridge, error) {
	if cfg.Stars == nil {
		return nil, ErrNoStars
	}
	if cfg.DT <= 0 {
		return nil, ErrBadDT
	}
	if cfg.Gas != nil && cfg.Gas.N() > 0 && cfg.Coupler == nil {
		return nil, ErrNoCoupler
	}
	if cfg.StellarEvery <= 0 {
		cfg.StellarEvery = 4
	}
	if cfg.SNRadius <= 0 {
		cfg.SNRadius = 0.2
	}
	return &Bridge{cfg: cfg}, nil
}

// Time returns the bridge model time.
func (b *Bridge) Time() float64 { return b.time }

// Steps returns completed bridge steps.
func (b *Bridge) Steps() int { return b.steps }

// Supernovae returns the cumulative supernova count seen by the bridge.
func (b *Bridge) Supernovae() int { return b.supernovae }

// CouplerFlops returns the accumulated coupling-field flop count.
func (b *Bridge) CouplerFlops() float64 { return b.flops }

// ResetCouplerFlops zeroes the counter and returns the prior value.
func (b *Bridge) ResetCouplerFlops() float64 {
	f := b.flops
	b.flops = 0
	return f
}

func (b *Bridge) trace(format string, args ...any) {
	if b.cfg.Trace != nil {
		b.cfg.Trace(fmt.Sprintf(format, args...))
	}
}

func (b *Bridge) hasGas() bool { return b.cfg.Gas != nil && b.cfg.Gas.N() > 0 }

// kick applies half-step cross-gravity kicks in both directions — the
// "p-kick" boxes of Fig. 7.
func (b *Bridge) kick(dt float64) error {
	if !b.hasGas() {
		return nil
	}
	stars, gas, cpl := b.cfg.Stars, b.cfg.Gas, b.cfg.Coupler

	b.trace("coupler.field gas->stars (%s)", cpl.Name())
	accS, _, f1 := cpl.FieldAt(gas.Masses(), gas.Positions(), stars.Positions(), b.cfg.Eps)
	b.trace("coupler.field stars->gas (%s)", cpl.Name())
	accG, _, f2 := cpl.FieldAt(stars.Masses(), stars.Positions(), gas.Positions(), b.cfg.Eps)
	b.flops += f1 + f2

	for i := range accS {
		accS[i] = accS[i].Scale(dt)
	}
	for i := range accG {
		accG[i] = accG[i].Scale(dt)
	}
	b.trace("stars.kick dt=%g", dt)
	if err := stars.Kick(accS); err != nil {
		return fmt.Errorf("bridge: star kick: %w", err)
	}
	b.trace("gas.kick dt=%g", dt)
	if err := gas.Kick(accG); err != nil {
		return fmt.Errorf("bridge: gas kick: %w", err)
	}
	return nil
}

// evolve advances both models to time t concurrently — the parallel
// "evolve" circles of Fig. 7.
func (b *Bridge) evolve(t float64) error {
	if !b.hasGas() {
		b.trace("stars.evolve t=%g", t)
		return b.cfg.Stars.EvolveTo(t)
	}
	b.trace("stars.evolve t=%g || gas.evolve t=%g", t, t)
	var wg sync.WaitGroup
	var errS, errG error
	wg.Add(2)
	go func() {
		defer wg.Done()
		errS = b.cfg.Stars.EvolveTo(t)
	}()
	go func() {
		defer wg.Done()
		errG = b.cfg.Gas.EvolveTo(t)
	}()
	wg.Wait()
	if errS != nil {
		return fmt.Errorf("bridge: star evolve: %w", errS)
	}
	if errG != nil {
		return fmt.Errorf("bridge: gas evolve: %w", errG)
	}
	return nil
}

// stellarUpdate runs stellar evolution to the current bridge time and
// pushes mass loss and supernova feedback into the dynamical models.
func (b *Bridge) stellarUpdate() error {
	if b.cfg.Stellar == nil {
		return nil
	}
	b.trace("stellar.evolve t=%g", b.time)
	events, err := b.cfg.Stellar.EvolveTo(b.time)
	if err != nil {
		return fmt.Errorf("bridge: stellar evolve: %w", err)
	}
	ms, settable := b.cfg.Stars.(MassSettable)
	masses := b.cfg.Stars.Masses()
	positions := b.cfg.Stars.Positions()
	injector, canInject := b.cfg.Gas.(EnergyInjector)
	for _, ev := range events {
		if ev.Index < 0 || ev.Index >= len(masses) {
			return fmt.Errorf("bridge: stellar event index %d out of range", ev.Index)
		}
		if ev.MassLoss > 0 && settable {
			b.trace("stars.set_mass i=%d dm=%g", ev.Index, ev.MassLoss)
			ms.SetMass(ev.Index, masses[ev.Index]-ev.MassLoss)
		}
		if ev.SN {
			b.supernovae++
			if b.hasGas() && canInject && b.cfg.SNEnergy > 0 {
				b.trace("gas.inject_energy i=%d e=%g", ev.Index, b.cfg.SNEnergy)
				injector.InjectEnergy(positions[ev.Index], b.cfg.SNRadius, b.cfg.SNEnergy)
			}
		}
	}
	return nil
}

// Step advances the coupled system by one bridge step DT: the Fig. 7
// sequence kick(dt/2) → parallel evolve(dt) → kick(dt/2), with stellar
// evolution every StellarEvery-th step.
func (b *Bridge) Step() error {
	dt := b.cfg.DT
	b.trace("bridge.step t=%g", b.time)
	if err := b.kick(dt / 2); err != nil {
		return err
	}
	if err := b.evolve(b.time + dt); err != nil {
		return err
	}
	if err := b.kick(dt / 2); err != nil {
		return err
	}
	b.time += dt
	b.steps++
	if b.steps%b.cfg.StellarEvery == 0 {
		if err := b.stellarUpdate(); err != nil {
			return err
		}
	}
	return nil
}

// EvolveTo runs bridge steps until the model time reaches t (the last step
// may overshoot by less than DT; bridge steps are fixed-size as in Fig. 7).
func (b *Bridge) EvolveTo(t float64) error {
	for b.time < t-1e-15 {
		if err := b.Step(); err != nil {
			return err
		}
	}
	return nil
}

// CrossPotential returns the star↔gas interaction energy Σ m_i φ_gas(x_i),
// used by the energy diagnostics (counted against the coupler's flops).
func (b *Bridge) CrossPotential() float64 {
	if !b.hasGas() {
		return 0
	}
	stars, gas := b.cfg.Stars, b.cfg.Gas
	_, pot, f := b.cfg.Coupler.FieldAt(gas.Masses(), gas.Positions(), stars.Positions(), b.cfg.Eps)
	b.flops += f
	var u float64
	masses := stars.Masses()
	for i := range pot {
		u += masses[i] * pot[i]
	}
	return u
}
