package tree

import (
	"context"
	"strings"
	"testing"

	"jungle/internal/amuse/data"
	"jungle/internal/amuse/ic"
	"jungle/internal/core/kernel"
	"jungle/internal/deploy"
)

// stagedService builds a ready field service via the registered factory.
func stagedService(t *testing.T) kernel.Service {
	t.Helper()
	svc, err := kernel.New(KindField, kernel.Config{
		Res: &deploy.Resource{Name: "test", Frontend: "test", CPU: cpu()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	if _, _, err := svc.Dispatch("setup", kernel.Encode(kernel.SetupFieldArgs{Kernel: "fi", Eps: 0.05}), 0); err != nil {
		t.Fatal(err)
	}
	return svc
}

// stage dispatches one staged column application.
func stage(t *testing.T, svc kernel.Service, method string, slot uint64, st *kernel.StatePayload) {
	t.Helper()
	raw, err := kernel.MarshalState(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Dispatch(method, kernel.AppendStaged(nil, slot, raw), 0); err != nil {
		t.Fatal(err)
	}
}

// TestFieldStagedMatchesFieldAt: the staged evaluation path (the direct
// data plane's worker-side half) must be bit-identical to field_at with
// the same inputs, and must free its slot after use.
func TestFieldStagedMatchesFieldAt(t *testing.T) {
	svc := stagedService(t)
	src := ic.Plummer(80, 1)
	tgt := ic.Plummer(20, 2)

	stage(t, svc, "stage_sources", 5, kernel.NewState(src.Len()).
		AddFloat(data.AttrMass, src.Mass).AddVec(data.AttrPos, src.Pos))
	stage(t, svc, "stage_targets", 5, kernel.NewState(tgt.Len()).
		AddVec(data.AttrPos, tgt.Pos))

	out, _, err := svc.Dispatch("field_staged", kernel.Encode(kernel.FieldStagedArgs{Slot: 5}), 0)
	if err != nil {
		t.Fatal(err)
	}
	var staged kernel.FieldAtResult
	if err := kernel.Decode(out, &staged); err != nil {
		t.Fatal(err)
	}

	k := NewFi(cpu())
	acc, pot, _ := k.FieldAt(context.Background(), src.Mass, src.Pos, tgt.Pos, 0.05)
	if len(staged.Acc) != len(acc) {
		t.Fatalf("lengths %d vs %d", len(staged.Acc), len(acc))
	}
	for i := range acc {
		if staged.Acc[i] != acc[i] || staged.Pot[i] != pot[i] {
			t.Fatalf("staged[%d] = %v/%v, direct %v/%v", i, staged.Acc[i], staged.Pot[i], acc[i], pot[i])
		}
	}

	// The slot is consumed: a second evaluation must fail.
	if _, _, err := svc.Dispatch("field_staged", kernel.Encode(kernel.FieldStagedArgs{Slot: 5}), 0); err == nil {
		t.Fatal("field_staged reused a consumed slot")
	}
}

// TestStagedSlotsAreIndependent: two slots staged interleaved evaluate
// with their own inputs (the in-flight pipelining the bridge relies on).
func TestStagedSlotsAreIndependent(t *testing.T) {
	svc := stagedService(t)
	a := ic.Plummer(40, 3)
	b := ic.Plummer(40, 4)
	tgt := ic.Plummer(10, 5)

	stage(t, svc, "stage_sources", 1, kernel.NewState(a.Len()).
		AddFloat(data.AttrMass, a.Mass).AddVec(data.AttrPos, a.Pos))
	stage(t, svc, "stage_sources", 2, kernel.NewState(b.Len()).
		AddFloat(data.AttrMass, b.Mass).AddVec(data.AttrPos, b.Pos))
	stage(t, svc, "stage_targets", 1, kernel.NewState(tgt.Len()).AddVec(data.AttrPos, tgt.Pos))
	stage(t, svc, "stage_targets", 2, kernel.NewState(tgt.Len()).AddVec(data.AttrPos, tgt.Pos))

	eval := func(slot uint64) kernel.FieldAtResult {
		t.Helper()
		out, _, err := svc.Dispatch("field_staged", kernel.Encode(kernel.FieldStagedArgs{Slot: slot}), 0)
		if err != nil {
			t.Fatal(err)
		}
		var res kernel.FieldAtResult
		if err := kernel.Decode(out, &res); err != nil {
			t.Fatal(err)
		}
		return res
	}
	r2 := eval(2) // consume out of order
	r1 := eval(1)

	k := NewFi(cpu())
	accA, _, _ := k.FieldAt(context.Background(), a.Mass, a.Pos, tgt.Pos, 0.05)
	accB, _, _ := k.FieldAt(context.Background(), b.Mass, b.Pos, tgt.Pos, 0.05)
	for i := range accA {
		if r1.Acc[i] != accA[i] {
			t.Fatalf("slot 1 acc[%d] = %v, want %v", i, r1.Acc[i], accA[i])
		}
		if r2.Acc[i] != accB[i] {
			t.Fatalf("slot 2 acc[%d] = %v, want %v", i, r2.Acc[i], accB[i])
		}
	}
}

// TestStageMissingColumnsNameAttribute: staged uploads without the
// required columns fail naming the attribute.
func TestStageMissingColumnsNameAttribute(t *testing.T) {
	svc := stagedService(t)
	p := ic.Plummer(4, 6)

	raw, err := kernel.MarshalState(kernel.NewState(p.Len()).AddVec(data.AttrPos, p.Pos))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = svc.Dispatch("stage_sources", kernel.AppendStaged(nil, 1, raw), 0)
	if err == nil || !strings.Contains(err.Error(), data.AttrMass) {
		t.Fatalf("stage_sources without mass: %v (want error naming %q)", err, data.AttrMass)
	}

	raw, err = kernel.MarshalState(kernel.NewState(p.Len()).AddFloat(data.AttrMass, p.Mass))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = svc.Dispatch("stage_targets", kernel.AppendStaged(nil, 1, raw), 0)
	if err == nil || !strings.Contains(err.Error(), data.AttrPos) {
		t.Fatalf("stage_targets without position: %v (want error naming %q)", err, data.AttrPos)
	}
}
