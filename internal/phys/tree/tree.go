// Package tree implements Barnes–Hut octree gravity — the reproduction's
// equivalent of the paper's coupling kernels: Octgrav (C++/CUDA tree code)
// and Fi (Fortran tree code). Both kernels here share one traversal, so
// switching between them (Multi-Kernel) changes performance only; the paper
// uses exactly this pair to couple gas and stellar gravity when a GPU is or
// is not available.
package tree

import (
	"context"
	"math"
	"runtime"
	"sync"

	"jungle/internal/amuse/data"
	"jungle/internal/vtime"
)

// FlopsPerInteraction is the accounted cost of one target↔node (or
// target↔body) interaction during traversal.
const FlopsPerInteraction = 24

// leafCap is the maximum number of bodies stored in a leaf node.
const leafCap = 8

// node is one octree cell.
type node struct {
	center   data.Vec3 // geometric center of the cell
	half     float64   // half side length
	mass     float64
	com      data.Vec3 // center of mass
	children [8]int32  // -1 when absent
	bodies   []int32   // leaf payload (empty for internal nodes)
	leaf     bool
}

// Tree is an immutable octree over a set of source bodies.
type Tree struct {
	nodes []node
	mass  []float64
	pos   []data.Vec3
}

// Build constructs the octree over the given bodies.
func Build(mass []float64, pos []data.Vec3) *Tree {
	t := &Tree{mass: mass, pos: pos}
	if len(pos) == 0 {
		return t
	}
	// Bounding cube.
	lo, hi := pos[0], pos[0]
	for _, p := range pos {
		for d := 0; d < 3; d++ {
			if p[d] < lo[d] {
				lo[d] = p[d]
			}
			if p[d] > hi[d] {
				hi[d] = p[d]
			}
		}
	}
	center := lo.Add(hi).Scale(0.5)
	half := 0.0
	for d := 0; d < 3; d++ {
		if h := (hi[d] - lo[d]) / 2; h > half {
			half = h
		}
	}
	if half == 0 {
		half = 1e-9
	}
	half *= 1.0001 // keep boundary bodies strictly inside

	t.nodes = append(t.nodes, node{center: center, half: half, leaf: true})
	t.nodes[0].children = noChildren()
	for i := range pos {
		t.insert(0, int32(i), 0)
	}
	t.summarize(0)
	return t
}

func noChildren() [8]int32 {
	return [8]int32{-1, -1, -1, -1, -1, -1, -1, -1}
}

// octant returns which child octant p falls into relative to center.
func octant(center, p data.Vec3) int {
	o := 0
	if p[0] >= center[0] {
		o |= 1
	}
	if p[1] >= center[1] {
		o |= 2
	}
	if p[2] >= center[2] {
		o |= 4
	}
	return o
}

// maxDepth bounds subdivision for coincident points.
const maxDepth = 64

func (t *Tree) insert(ni int32, body int32, depth int) {
	n := &t.nodes[ni]
	if n.leaf {
		if len(n.bodies) < leafCap || depth >= maxDepth {
			n.bodies = append(n.bodies, body)
			return
		}
		// Split: push existing bodies down.
		old := n.bodies
		n.bodies = nil
		n.leaf = false
		for _, b := range old {
			t.pushDown(ni, b, depth)
		}
	}
	t.pushDown(ni, body, depth)
}

func (t *Tree) pushDown(ni int32, body int32, depth int) {
	// Note: t.nodes may be reallocated by append, so re-take pointers.
	o := octant(t.nodes[ni].center, t.pos[body])
	ci := t.nodes[ni].children[o]
	if ci < 0 {
		parent := t.nodes[ni]
		h := parent.half / 2
		cc := parent.center
		if o&1 != 0 {
			cc[0] += h
		} else {
			cc[0] -= h
		}
		if o&2 != 0 {
			cc[1] += h
		} else {
			cc[1] -= h
		}
		if o&4 != 0 {
			cc[2] += h
		} else {
			cc[2] -= h
		}
		ci = int32(len(t.nodes))
		t.nodes = append(t.nodes, node{center: cc, half: h, leaf: true, children: noChildren()})
		t.nodes[ni].children[o] = ci
	}
	t.insert(ci, body, depth+1)
}

// summarize computes mass and center of mass bottom-up.
func (t *Tree) summarize(ni int32) (float64, data.Vec3) {
	n := &t.nodes[ni]
	if n.leaf {
		var m float64
		var com data.Vec3
		for _, b := range n.bodies {
			m += t.mass[b]
			com = com.Add(t.pos[b].Scale(t.mass[b]))
		}
		n.mass = m
		if m > 0 {
			n.com = com.Scale(1 / m)
		} else {
			n.com = n.center
		}
		return n.mass, n.com.Scale(n.mass)
	}
	var m float64
	var wcom data.Vec3
	for _, ci := range n.children {
		if ci < 0 {
			continue
		}
		cm, cwcom := t.summarize(ci)
		m += cm
		wcom = wcom.Add(cwcom)
	}
	n.mass = m
	if m > 0 {
		n.com = wcom.Scale(1 / m)
	} else {
		n.com = n.center
	}
	return n.mass, wcom
}

// Nodes returns the number of tree nodes (diagnostics).
func (t *Tree) Nodes() int { return len(t.nodes) }

// TotalMass returns the summed source mass.
func (t *Tree) TotalMass() float64 {
	if len(t.nodes) == 0 {
		return 0
	}
	return t.nodes[0].mass
}

// accelAt traverses the tree for one target point. Returns interactions
// counted.
func (t *Tree) accelAt(p data.Vec3, eps2, theta float64, acc *data.Vec3, pot *float64) int {
	if len(t.nodes) == 0 {
		return 0
	}
	theta2 := theta * theta
	inter := 0
	// Explicit stack; deterministic depth-first order.
	stack := make([]int32, 0, 128)
	stack = append(stack, 0)
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.nodes[ni]
		if n.mass == 0 {
			continue
		}
		dp := n.com.Sub(p)
		r2 := dp.Norm2()
		size := 2 * n.half
		if n.leaf || size*size < theta2*r2 {
			if n.leaf {
				for _, b := range n.bodies {
					db := t.pos[b].Sub(p)
					r2b := db.Norm2() + eps2
					if r2b == 0 {
						continue
					}
					r := math.Sqrt(r2b)
					rinv := 1 / r
					mr3 := t.mass[b] * rinv * rinv * rinv
					acc[0] += mr3 * db[0]
					acc[1] += mr3 * db[1]
					acc[2] += mr3 * db[2]
					*pot -= t.mass[b] * rinv
					inter++
				}
				continue
			}
			r2e := r2 + eps2
			r := math.Sqrt(r2e)
			rinv := 1 / r
			mr3 := n.mass * rinv * rinv * rinv
			acc[0] += mr3 * dp[0]
			acc[1] += mr3 * dp[1]
			acc[2] += mr3 * dp[2]
			*pot -= n.mass * rinv
			inter++
			continue
		}
		// Push children in reverse so traversal visits octant 0 first.
		for c := 7; c >= 0; c-- {
			if ci := n.children[c]; ci >= 0 {
				stack = append(stack, ci)
			}
		}
	}
	return inter
}

// Accel evaluates acceleration and potential at every target point with
// opening angle theta and Plummer softening eps. Targets are processed in
// parallel; each target's traversal is deterministic. Returns the accounted
// flop count.
func (t *Tree) Accel(targets []data.Vec3, eps, theta float64, acc []data.Vec3, pot []float64) float64 {
	n := len(targets)
	if n == 0 {
		return 0
	}
	eps2 := eps * eps
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	interactions := make([]int, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			total := 0
			for i := lo; i < hi; i++ {
				var a data.Vec3
				var p float64
				total += t.accelAt(targets[i], eps2, theta, &a, &p)
				acc[i] = a
				pot[i] = p
			}
			interactions[w] = total
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, x := range interactions {
		total += x
	}
	return FlopsPerInteraction * float64(total)
}

// Kernel is a named, device-accounted tree-gravity variant.
type Kernel struct {
	name  string
	dev   *vtime.Device
	Theta float64 // opening angle (default 0.6)
}

// NewOctgrav returns the GPU tree kernel (the paper's Octgrav).
func NewOctgrav(dev *vtime.Device) *Kernel {
	return &Kernel{name: "octgrav", dev: dev, Theta: 0.6}
}

// NewFi returns the CPU tree kernel (the paper's Fi).
func NewFi(dev *vtime.Device) *Kernel {
	return &Kernel{name: "fi", dev: dev, Theta: 0.6}
}

// Name returns the kernel name.
func (k *Kernel) Name() string { return k.name }

// Device returns the kernel's performance model.
func (k *Kernel) Device() *vtime.Device { return k.dev }

// FieldAt builds a tree over the sources and evaluates the field at the
// targets. It returns the accelerations, potentials and accounted flops
// (tree build cost ≈ N log N is folded in at 40 flops per body-level).
// One evaluation is a single kernel launch; the context is only checked
// on entry.
func (k *Kernel) FieldAt(ctx context.Context, srcMass []float64, srcPos, targets []data.Vec3, eps float64) ([]data.Vec3, []float64, float64) {
	if ctx.Err() != nil {
		return make([]data.Vec3, len(targets)), make([]float64, len(targets)), 0
	}
	tr := Build(srcMass, srcPos)
	acc := make([]data.Vec3, len(targets))
	pot := make([]float64, len(targets))
	flops := tr.Accel(targets, eps, k.Theta, acc, pot)
	if n := len(srcPos); n > 1 {
		flops += 40 * float64(n) * math.Log2(float64(n))
	}
	return acc, pot, flops
}
