package tree

import (
	"context"
	"math"
	"testing"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/amuse/ic"
	"jungle/internal/vtime"
)

func gpu() *vtime.Device {
	return &vtime.Device{Name: "9600gt", Kind: vtime.GPU, Gflops: 60, Cores: 1,
		LaunchLatency: 50 * time.Microsecond}
}

func cpu() *vtime.Device {
	return &vtime.Device{Name: "core2", Kind: vtime.CPU, Gflops: 1, Cores: 4}
}

// directField computes the exact field for comparison.
func directField(mass []float64, pos []data.Vec3, targets []data.Vec3, eps float64) ([]data.Vec3, []float64) {
	acc := make([]data.Vec3, len(targets))
	pot := make([]float64, len(targets))
	eps2 := eps * eps
	for i, p := range targets {
		for j := range mass {
			dp := pos[j].Sub(p)
			r2 := dp.Norm2() + eps2
			if r2 == 0 {
				continue
			}
			r := math.Sqrt(r2)
			mr3 := mass[j] / (r * r * r)
			acc[i] = acc[i].Add(dp.Scale(mr3))
			pot[i] -= mass[j] / r
		}
	}
	return acc, pot
}

func TestTreeMassConservation(t *testing.T) {
	p := ic.Plummer(500, 1)
	tr := Build(p.Mass, p.Pos)
	if m := tr.TotalMass(); math.Abs(m-1) > 1e-12 {
		t.Fatalf("tree mass = %v", m)
	}
	if tr.Nodes() < 10 {
		t.Fatalf("tree too shallow: %d nodes", tr.Nodes())
	}
}

func TestTreeMatchesDirectSummation(t *testing.T) {
	p := ic.Plummer(800, 2)
	targets := make([]data.Vec3, 50)
	for i := range targets {
		targets[i] = p.Pos[i*16]
	}
	k := NewFi(cpu())
	k.Theta = 0.5
	acc, pot, flops := k.FieldAt(context.Background(), p.Mass, p.Pos, targets, 0.01)
	dacc, dpot := directField(p.Mass, p.Pos, targets, 0.01)
	if flops <= 0 {
		t.Fatal("no flops accounted")
	}
	for i := range targets {
		relA := acc[i].Sub(dacc[i]).Norm() / dacc[i].Norm()
		if relA > 0.02 {
			t.Fatalf("target %d: tree acc off by %v", i, relA)
		}
		relP := math.Abs((pot[i] - dpot[i]) / dpot[i])
		if relP > 0.02 {
			t.Fatalf("target %d: tree pot off by %v", i, relP)
		}
	}
}

func TestThetaZeroIsExact(t *testing.T) {
	// With theta=0 every interaction opens to the leaves: body sums equal
	// direct summation up to rounding.
	p := ic.Plummer(200, 3)
	targets := p.Pos[:20]
	k := NewFi(cpu())
	k.Theta = 0
	acc, _, _ := k.FieldAt(context.Background(), p.Mass, p.Pos, targets, 0.01)
	dacc, _ := directField(p.Mass, p.Pos, targets, 0.01)
	for i := range targets {
		if rel := acc[i].Sub(dacc[i]).Norm() / dacc[i].Norm(); rel > 1e-10 {
			t.Fatalf("theta=0 target %d off by %v", i, rel)
		}
	}
}

func TestLargerThetaFewerFlops(t *testing.T) {
	p := ic.Plummer(1000, 4)
	targets := p.Pos[:100]
	loose := NewOctgrav(gpu())
	loose.Theta = 1.0
	tight := NewOctgrav(gpu())
	tight.Theta = 0.2
	_, _, fLoose := loose.FieldAt(context.Background(), p.Mass, p.Pos, targets, 0.01)
	_, _, fTight := tight.FieldAt(context.Background(), p.Mass, p.Pos, targets, 0.01)
	if fLoose >= fTight {
		t.Fatalf("theta=1.0 flops %v not below theta=0.2 flops %v", fLoose, fTight)
	}
}

// TestOctgravFiIdentical is the Multi-Kernel property for the coupling
// models: Octgrav (GPU) and Fi (CPU) produce identical results at equal
// theta.
func TestOctgravFiIdentical(t *testing.T) {
	p := ic.Plummer(600, 5)
	targets := p.Pos[:64]
	a := NewOctgrav(gpu())
	b := NewFi(cpu())
	accA, potA, _ := a.FieldAt(context.Background(), p.Mass, p.Pos, targets, 0.02)
	accB, potB, _ := b.FieldAt(context.Background(), p.Mass, p.Pos, targets, 0.02)
	for i := range targets {
		for d := 0; d < 3; d++ {
			if math.Float64bits(accA[i][d]) != math.Float64bits(accB[i][d]) {
				t.Fatalf("acc[%d][%d] differs between octgrav and fi", i, d)
			}
		}
		if math.Float64bits(potA[i]) != math.Float64bits(potB[i]) {
			t.Fatalf("pot[%d] differs", i)
		}
	}
	if a.Name() == b.Name() {
		t.Fatal("kernels share a name")
	}
	if a.Device().Kind != vtime.GPU || b.Device().Kind != vtime.CPU {
		t.Fatal("kernel devices wrong")
	}
}

func TestEmptyAndSingleBody(t *testing.T) {
	tr := Build(nil, nil)
	if tr.TotalMass() != 0 {
		t.Fatal("empty tree has mass")
	}
	acc := make([]data.Vec3, 1)
	pot := make([]float64, 1)
	if f := tr.Accel([]data.Vec3{{1, 2, 3}}, 0.1, 0.6, acc, pot); f != 0 {
		t.Fatal("empty tree produced interactions")
	}

	one := data.NewParticles(1)
	one.Mass[0] = 2
	one.Pos[0] = data.Vec3{1, 0, 0}
	tr = Build(one.Mass, one.Pos)
	tr.Accel([]data.Vec3{{0, 0, 0}}, 0, 0.6, acc, pot)
	if math.Abs(acc[0][0]-2) > 1e-12 {
		t.Fatalf("single body acc = %v, want 2 toward +x", acc[0])
	}
	if math.Abs(pot[0]+2) > 1e-12 {
		t.Fatalf("single body pot = %v, want -2", pot[0])
	}
}

func TestCoincidentBodies(t *testing.T) {
	// Bodies at the same position must not recurse forever or produce NaN
	// at a softened target.
	n := 20
	p := data.NewParticles(n)
	for i := 0; i < n; i++ {
		p.Mass[i] = 1
		p.Pos[i] = data.Vec3{1, 1, 1}
	}
	tr := Build(p.Mass, p.Pos)
	acc := make([]data.Vec3, 1)
	pot := make([]float64, 1)
	tr.Accel([]data.Vec3{{0, 0, 0}}, 0.1, 0.6, acc, pot)
	if math.IsNaN(acc[0].Norm()) || math.IsNaN(pot[0]) {
		t.Fatal("NaN from coincident bodies")
	}
	if math.Abs(tr.TotalMass()-float64(n)) > 1e-12 {
		t.Fatalf("mass = %v", tr.TotalMass())
	}
}

func TestSelfFieldMomentumBalance(t *testing.T) {
	// Newton's third law approximately holds for the tree field evaluated
	// at the sources themselves: Σ m·a ≈ 0.
	p := ic.Plummer(400, 6)
	k := NewFi(cpu())
	acc, _, _ := k.FieldAt(context.Background(), p.Mass, p.Pos, p.Pos, 0.01)
	var net data.Vec3
	for i := range acc {
		net = net.Add(acc[i].Scale(p.Mass[i]))
	}
	// Tree approximation breaks exact antisymmetry; the residual must be
	// small compared to the typical |a| ~ 1 scale.
	if net.Norm() > 0.02 {
		t.Fatalf("net momentum flux %v", net.Norm())
	}
}
