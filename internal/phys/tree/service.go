package tree

import (
	"context"
	"fmt"
	"time"

	"jungle/internal/core/kernel"
	"jungle/internal/deploy"
	"jungle/internal/vtime"
)

// KindField is the worker kind this package registers: the coupling
// worker (Octgrav on GPUs, Fi on CPUs).
const KindField = "coupling"

// fieldEfficiency is this kernel family's sustained-efficiency
// calibration knob (Barnes–Hut tree); fitted jointly with the other
// families against §6.2's scenario numbers — see DESIGN.md.
const fieldEfficiency = 1.395e-4

func init() {
	kernel.Register(KindField, newFieldService)
}

// fieldService hosts the coupling worker.
type fieldService struct {
	res   *deploy.Resource
	clock *vtime.Clock
	k     *Kernel
	dev   *vtime.Device
	eps   float64
}

func newFieldService(cfg kernel.Config) (kernel.Service, error) {
	return &fieldService{res: cfg.Res, clock: vtime.NewClock()}, nil
}

func (s *fieldService) Close() {}

func (s *fieldService) Dispatch(method string, args []byte, at time.Duration) ([]byte, time.Duration, error) {
	s.clock.AdvanceTo(at)
	switch method {
	case "setup":
		var a kernel.SetupFieldArgs
		if err := kernel.Decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		wantGPU := a.Kernel == "octgrav"
		dev, err := kernel.PickDevice(s.res, wantGPU)
		if err != nil {
			return nil, s.clock.Now(), err
		}
		s.dev = kernel.Derate(dev, fieldEfficiency)
		if wantGPU {
			s.k = NewOctgrav(s.dev)
		} else {
			s.k = NewFi(s.dev)
		}
		if a.Theta > 0 {
			s.k.Theta = a.Theta
		}
		s.eps = a.Eps
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case "field_at":
		var a kernel.FieldAtArgs
		if err := kernel.Decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		acc, pot, flops := s.k.FieldAt(context.Background(), a.SrcMass, a.SrcPos, a.Targets, s.eps)
		s.clock.Advance(s.dev.Time(flops, 0))
		return kernel.Encode(kernel.FieldAtResult{Acc: acc, Pot: pot}), s.clock.Now(), nil
	case "stats":
		return kernel.Encode(kernel.StatsResult{}), s.clock.Now(), nil
	default:
		return nil, s.clock.Now(), fmt.Errorf("%w: coupling.%s", kernel.ErrNoSuchMethod, method)
	}
}
