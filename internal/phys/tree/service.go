package tree

import (
	"context"
	"fmt"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/core/kernel"
	"jungle/internal/deploy"
	"jungle/internal/vtime"
)

// KindField is the worker kind this package registers: the coupling
// worker (Octgrav on GPUs, Fi on CPUs).
const KindField = "coupling"

// fieldEfficiency is this kernel family's sustained-efficiency
// calibration knob (Barnes–Hut tree); fitted jointly with the other
// families against §6.2's scenario numbers — see DESIGN.md.
const fieldEfficiency = 1.395e-4

func init() {
	kernel.Register(KindField, newFieldService)
}

// fieldService hosts the coupling worker.
type fieldService struct {
	res   *deploy.Resource
	clock *vtime.Clock
	k     *Kernel
	dev   *vtime.Device
	eps   float64

	// Staged inputs for the direct data plane: sources (mass+position)
	// and targets (position) arrive worker-to-worker via
	// stage_sources/stage_targets, keyed by slot so several exchanges can
	// be in flight; field_staged consumes a slot.
	srcStage map[uint64]stagedSources
	tgtStage map[uint64][]data.Vec3
}

// stagedSources is one slot's field-source columns.
type stagedSources struct {
	mass []float64
	pos  []data.Vec3
}

func newFieldService(cfg kernel.Config) (kernel.Service, error) {
	return &fieldService{
		res: cfg.Res, clock: vtime.NewClock(),
		srcStage: make(map[uint64]stagedSources),
		tgtStage: make(map[uint64][]data.Vec3),
	}, nil
}

// unstage parses a slot-tagged state frame and returns its columns.
func unstage(args []byte) (slot uint64, st *kernel.StatePayload, err error) {
	slot, raw, err := kernel.UnmarshalStaged(args)
	if err != nil {
		return 0, nil, err
	}
	st, err = kernel.UnmarshalState(raw)
	return slot, st, err
}

func (s *fieldService) Close() {}

func (s *fieldService) Dispatch(method string, args []byte, at time.Duration) ([]byte, time.Duration, error) {
	s.clock.AdvanceTo(at)
	switch method {
	case "setup":
		var a kernel.SetupFieldArgs
		if err := kernel.Decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		wantGPU := a.Kernel == "octgrav"
		dev, err := kernel.PickDevice(s.res, wantGPU)
		if err != nil {
			return nil, s.clock.Now(), err
		}
		s.dev = kernel.Derate(dev, fieldEfficiency)
		if wantGPU {
			s.k = NewOctgrav(s.dev)
		} else {
			s.k = NewFi(s.dev)
		}
		if a.Theta > 0 {
			s.k.Theta = a.Theta
		}
		s.eps = a.Eps
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case "field_at":
		var a kernel.FieldAtArgs
		if err := kernel.Decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		acc, pot, flops := s.k.FieldAt(context.Background(), a.SrcMass, a.SrcPos, a.Targets, s.eps)
		s.clock.Advance(s.dev.Time(flops, 0))
		return kernel.Encode(kernel.FieldAtResult{Acc: acc, Pot: pot}), s.clock.Now(), nil
	case "stage_sources":
		slot, st, err := unstage(args)
		if err != nil {
			return nil, s.clock.Now(), err
		}
		mass, pos := st.Float(data.AttrMass), st.Vec(data.AttrPos)
		if mass == nil {
			return nil, s.clock.Now(), fmt.Errorf("tree: stage_sources: missing attribute %q", data.AttrMass)
		}
		if pos == nil {
			return nil, s.clock.Now(), fmt.Errorf("tree: stage_sources: missing attribute %q", data.AttrPos)
		}
		s.srcStage[slot] = stagedSources{mass: mass, pos: pos}
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case "stage_targets":
		slot, st, err := unstage(args)
		if err != nil {
			return nil, s.clock.Now(), err
		}
		pos := st.Vec(data.AttrPos)
		if pos == nil {
			return nil, s.clock.Now(), fmt.Errorf("tree: stage_targets: missing attribute %q", data.AttrPos)
		}
		s.tgtStage[slot] = pos
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case "stage_release":
		// Abandon a slot whose evaluation will never be issued (one of
		// its staging transfers failed): frees the staged columns.
		var a kernel.FieldStagedArgs
		if err := kernel.Decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		delete(s.srcStage, a.Slot)
		delete(s.tgtStage, a.Slot)
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case "field_staged":
		var a kernel.FieldStagedArgs
		if err := kernel.Decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		src, ok := s.srcStage[a.Slot]
		if !ok {
			return nil, s.clock.Now(), fmt.Errorf("tree: field_staged: no sources staged for slot %d", a.Slot)
		}
		tgt, ok := s.tgtStage[a.Slot]
		if !ok {
			return nil, s.clock.Now(), fmt.Errorf("tree: field_staged: no targets staged for slot %d", a.Slot)
		}
		delete(s.srcStage, a.Slot)
		delete(s.tgtStage, a.Slot)
		acc, pot, flops := s.k.FieldAt(context.Background(), src.mass, src.pos, tgt, s.eps)
		s.clock.Advance(s.dev.Time(flops, 0))
		return kernel.Encode(kernel.FieldAtResult{Acc: acc, Pot: pot}), s.clock.Now(), nil
	case "stats":
		return kernel.Encode(kernel.StatsResult{}), s.clock.Now(), nil
	case kernel.MethodCheckpoint, kernel.MethodRestore:
		out, err := kernel.ServeCheckpoint(s, method, args)
		return out, s.clock.Now(), err
	default:
		return nil, s.clock.Now(), fmt.Errorf("%w: coupling.%s", kernel.ErrNoSuchMethod, method)
	}
}

// fieldExtra is the coupling worker's non-columnar snapshot state: the
// field kernel holds no particles of its own, but staged direct-plane
// inputs may be parked between a stage_* application and its evaluation.
type fieldExtra struct {
	Slots []fieldSlot
}

// fieldSlot is one staged slot's columns (any of the three may be nil).
type fieldSlot struct {
	Slot uint64
	Mass []float64
	Pos  []data.Vec3
	Tgt  []data.Vec3
}

// Snapshot implements kernel.Checkpointable. The coupling kernel is a
// pure function of its inputs, so the snapshot is just the clock plus any
// staged slots.
func (s *fieldService) Snapshot() (*kernel.Snapshot, error) {
	var ex fieldExtra
	for slot, src := range s.srcStage {
		fs := fieldSlot{Slot: slot, Mass: src.mass, Pos: src.pos, Tgt: s.tgtStage[slot]}
		ex.Slots = append(ex.Slots, fs)
	}
	for slot, tgt := range s.tgtStage {
		if _, dup := s.srcStage[slot]; !dup {
			ex.Slots = append(ex.Slots, fieldSlot{Slot: slot, Tgt: tgt})
		}
	}
	snap := &kernel.Snapshot{Kind: KindField, VTime: s.clock.Now()}
	if len(ex.Slots) > 0 {
		snap.Extra = kernel.Encode(ex)
	}
	return snap, nil
}

// Restore implements kernel.Checkpointable.
func (s *fieldService) Restore(snap *kernel.Snapshot) error {
	if err := snap.CheckKind(KindField); err != nil {
		return err
	}
	s.srcStage = make(map[uint64]stagedSources)
	s.tgtStage = make(map[uint64][]data.Vec3)
	if len(snap.Extra) == 0 {
		return nil
	}
	var ex fieldExtra
	if err := kernel.Decode(snap.Extra, &ex); err != nil {
		return err
	}
	for _, fs := range ex.Slots {
		if fs.Mass != nil || fs.Pos != nil {
			s.srcStage[fs.Slot] = stagedSources{mass: fs.Mass, pos: fs.Pos}
		}
		if fs.Tgt != nil {
			s.tgtStage[fs.Slot] = fs.Tgt
		}
	}
	return nil
}
