package stellar

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLifetimeDecreasesWithMass(t *testing.T) {
	s := New()
	prev := math.Inf(1)
	for _, m := range []float64{0.5, 1, 2, 5, 10, 25, 50} {
		lt := s.MSLifetime(m)
		if lt >= prev {
			t.Fatalf("lifetime at %v MSun (%v) not below %v", m, lt, prev)
		}
		prev = lt
	}
	if lt := s.MSLifetime(1); math.Abs(lt-1e4) > 1 {
		t.Fatalf("solar MS lifetime = %v Myr, want 10^4", lt)
	}
	if lt := s.MSLifetime(100); lt < 3 {
		t.Fatalf("massive star lifetime floor broken: %v", lt)
	}
}

func TestNewStarValidation(t *testing.T) {
	s := New()
	if _, err := s.NewStar(0.01); err == nil {
		t.Fatal("brown dwarf accepted")
	}
	if _, err := s.NewStar(200); err == nil {
		t.Fatal("200 MSun accepted")
	}
	st, err := s.NewStar(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Type != MainSequence || st.Mass != 1 {
		t.Fatalf("ZAMS star: %+v", st)
	}
	// Solar observables at ZAMS: L ~ 1 LSun, R ~ 1 RSun, T ~ 5772 K.
	if math.Abs(st.Luminosity-1) > 0.01 || math.Abs(st.Radius-1) > 0.01 {
		t.Fatalf("solar L/R: %v, %v", st.Luminosity, st.Radius)
	}
	if st.Temperature < 5000 || st.Temperature > 6500 {
		t.Fatalf("solar T = %v", st.Temperature)
	}
}

func TestSunIsStillMainSequenceAt5Gyr(t *testing.T) {
	s := New()
	st, _ := s.NewStar(1)
	s.Evolve(&st, 5000)
	if st.Type != MainSequence {
		t.Fatalf("sun at 5 Gyr: %v", st.Type)
	}
	if st.Supernova {
		t.Fatal("sun exploded")
	}
}

func TestRemnantTypesByMass(t *testing.T) {
	s := New()
	cases := []struct {
		m    float64
		want Type
	}{
		{1, WhiteDwarf},
		{5, WhiteDwarf},
		{10, NeutronStar},
		{19, NeutronStar},
		{25, BlackHole},
		{60, BlackHole},
	}
	for _, c := range cases {
		st, err := s.NewStar(c.m)
		if err != nil {
			t.Fatal(err)
		}
		s.Evolve(&st, 1e6) // 1000 Gyr: everything is a remnant
		if st.Type != c.want {
			t.Fatalf("%v MSun remnant = %v, want %v", c.m, st.Type, c.want)
		}
		if !st.Type.Remnant() {
			t.Fatalf("%v not flagged remnant", st.Type)
		}
	}
}

func TestSupernovaFlagOnlyOnce(t *testing.T) {
	s := New()
	st, _ := s.NewStar(25)
	tMS := s.MSLifetime(25)
	s.Evolve(&st, tMS/2)
	if st.Supernova {
		t.Fatal("exploded on the main sequence")
	}
	s.Evolve(&st, tMS*2) // past collapse
	if !st.Supernova {
		t.Fatal("no supernova at collapse")
	}
	s.Evolve(&st, tMS*3)
	if st.Supernova {
		t.Fatal("supernova flagged twice")
	}
	if st.Mass != s.InitFinalMass(25) {
		t.Fatalf("remnant mass %v", st.Mass)
	}
}

func TestMassMonotoneNonIncreasing(t *testing.T) {
	s := New()
	f := func(mRaw uint16, steps uint8) bool {
		m := 0.1 + float64(mRaw%1400)/10 // 0.1 .. 140
		st, err := s.NewStar(m)
		if err != nil {
			return true
		}
		tEnd := s.MSLifetime(m) * 3
		n := int(steps%20) + 2
		prev := st.Mass
		for i := 1; i <= n; i++ {
			s.Evolve(&st, tEnd*float64(i)/float64(n))
			if st.Mass > prev+1e-12 {
				return false
			}
			prev = st.Mass
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvolveBackwardsIgnored(t *testing.T) {
	s := New()
	st, _ := s.NewStar(2)
	s.Evolve(&st, 100)
	before := st
	if loss := s.Evolve(&st, 50); loss != 0 {
		t.Fatalf("backwards evolution lost %v", loss)
	}
	if st != before {
		t.Fatal("backwards evolution changed state")
	}
}

func TestGiantPhaseObservables(t *testing.T) {
	s := New()
	st, _ := s.NewStar(2)
	tMS := s.MSLifetime(2)
	s.Evolve(&st, tMS*1.05)
	if st.Type != Giant {
		t.Fatalf("type = %v", st.Type)
	}
	ms, _ := s.NewStar(2)
	if st.Luminosity <= ms.Luminosity || st.Radius <= ms.Radius {
		t.Fatal("giant not brighter/bigger than ZAMS")
	}
}

func TestPopulationEvolution(t *testing.T) {
	s := New()
	masses := []float64{0.5, 1, 3, 10, 25}
	p, err := NewPopulation(s, masses)
	if err != nil {
		t.Fatal(err)
	}
	m0 := p.TotalMass()
	loss := p.EvolveTo(50) // 50 Myr: the 10 and 25 MSun stars are gone
	if len(loss) != 5 {
		t.Fatalf("loss len = %d", len(loss))
	}
	if p.Supernovae() != 2 {
		t.Fatalf("supernovae = %d, want 2", p.Supernovae())
	}
	if p.TotalMass() >= m0 {
		t.Fatal("population gained mass")
	}
	var total float64
	for _, l := range loss {
		if l < 0 {
			t.Fatal("negative mass loss")
		}
		total += l
	}
	if math.Abs((m0-p.TotalMass())-total) > 1e-9 {
		t.Fatalf("loss accounting: %v vs %v", m0-p.TotalMass(), total)
	}
	if p.Flops() <= 0 {
		t.Fatal("no flops accounted")
	}
	if p.Time() != 50 {
		t.Fatalf("population time = %v", p.Time())
	}
}

func TestPopulationRejectsBadMass(t *testing.T) {
	if _, err := NewPopulation(New(), []float64{1, 0.001}); err == nil {
		t.Fatal("bad mass accepted")
	}
}

func TestTypeStrings(t *testing.T) {
	for _, tt := range []Type{MainSequence, Giant, WhiteDwarf, NeutronStar, BlackHole} {
		if tt.String() == "" || tt.String()[0] == 'T' {
			t.Fatalf("missing name for %d", int(tt))
		}
	}
	if Type(99).String() != "Type(99)" {
		t.Fatal("unknown type string")
	}
}
