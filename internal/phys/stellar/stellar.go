// Package stellar reimplements the paper's stellar-evolution model: an
// SSE-equivalent parameterized code (Hurley, Pols & Tout 2000). As the paper
// notes, SSE "does a simple lookup of a star's age and initial mass to
// determine its current state. Since this lookup is nearly trivial, SSE is
// simply a sequential application" — the model here is a compact analytic
// parameterization with the same structure: phases keyed on fractional
// main-sequence age, an initial–final mass relation, and supernovae for
// massive stars (the paper's simulation has "several of the bigger stars
// exploding in a supernova").
//
// Units: masses in MSun, times in Myr, radii in RSun, luminosities in LSun,
// temperatures in K.
package stellar

import (
	"errors"
	"fmt"
	"math"
)

// Type is the stellar evolutionary type (subset of SSE's 16 types).
type Type int

// Stellar types in evolutionary order.
const (
	MainSequence Type = iota + 1
	Giant
	WhiteDwarf
	NeutronStar
	BlackHole
)

func (t Type) String() string {
	switch t {
	case MainSequence:
		return "main-sequence"
	case Giant:
		return "giant"
	case WhiteDwarf:
		return "white-dwarf"
	case NeutronStar:
		return "neutron-star"
	case BlackHole:
		return "black-hole"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Remnant reports whether the type is a stellar remnant.
func (t Type) Remnant() bool {
	return t == WhiteDwarf || t == NeutronStar || t == BlackHole
}

// FlopsPerStar is the accounted cost of one star state lookup — small, as
// the paper stresses.
const FlopsPerStar = 120

// Star is the evolving state of one star.
type Star struct {
	InitialMass float64 // MSun, fixed at birth
	Mass        float64 // MSun, current
	Radius      float64 // RSun
	Luminosity  float64 // LSun
	Temperature float64 // K
	Age         float64 // Myr
	Type        Type
	// Supernova is set on the evolution call during which the star
	// collapsed (so couplers can count explosion events).
	Supernova bool
}

// ErrBadMass rejects non-physical initial masses.
var ErrBadMass = errors.New("stellar: initial mass out of range (0.08..150 MSun)")

// SSE is the parameterized evolution model. The zero value is not usable;
// call New.
type SSE struct {
	// GiantFraction is the giant-branch duration as a fraction of the
	// main-sequence lifetime (default 0.15).
	GiantFraction float64
	// SNThreshold is the minimum initial mass (MSun) that explodes as a
	// supernova leaving a neutron star (default 8).
	SNThreshold float64
	// BHThreshold is the minimum initial mass leaving a black hole
	// (default 20).
	BHThreshold float64
}

// New returns the model with standard parameters.
func New() *SSE {
	return &SSE{GiantFraction: 0.15, SNThreshold: 8, BHThreshold: 20}
}

// MSLifetime returns the main-sequence lifetime in Myr for an initial mass
// in MSun: ~10 Gyr at 1 MSun, steeply shorter for massive stars (the
// canonical t ∝ M/L ≈ M^-2.5 scaling, floored for the most massive stars).
func (s *SSE) MSLifetime(m float64) float64 {
	t := 1.0e4 * math.Pow(m, -2.5)
	if t < 3 {
		t = 3 // even the most massive stars live ~3 Myr
	}
	return t
}

// InitFinalMass is the initial–final mass relation: the remnant mass for a
// star of the given initial mass.
func (s *SSE) InitFinalMass(m float64) float64 {
	switch {
	case m >= s.BHThreshold:
		return 0.5 * m // black hole keeps a large fraction
	case m >= s.SNThreshold:
		return 1.4 // Chandrasekhar-mass neutron star
	default:
		// White dwarf (Kalirai et al. 2008), capped at the initial mass:
		// the linear relation extrapolates above m below ~0.45 MSun, where
		// the star simply keeps (almost) all of its mass.
		wd := 0.109*m + 0.394
		if wd > m {
			wd = m
		}
		return wd
	}
}

// NewStar returns a zero-age main-sequence star of mass m MSun.
func (s *SSE) NewStar(m float64) (Star, error) {
	if m < 0.08 || m > 150 {
		return Star{}, fmt.Errorf("%w: %v", ErrBadMass, m)
	}
	st := Star{InitialMass: m, Mass: m, Age: 0, Type: MainSequence}
	s.setObservables(&st, 1, 1)
	return st, nil
}

// Evolve advances the star to the given age in Myr (ages only move
// forward; earlier ages are ignored). Returns the mass lost since the
// previous state, which couplers feed back into the dynamics.
func (s *SSE) Evolve(st *Star, age float64) float64 {
	if age <= st.Age {
		return 0
	}
	prevMass := st.Mass
	st.Age = age
	st.Supernova = false

	m0 := st.InitialMass
	tMS := s.MSLifetime(m0)
	tGiant := tMS * (1 + s.GiantFraction)

	switch {
	case age < tMS:
		st.Type = MainSequence
		// Small main-sequence wind mass loss for massive stars.
		if m0 > 15 {
			frac := 0.05 * age / tMS
			st.Mass = m0 * (1 - frac)
		}
		// Luminosity brightens modestly along the MS.
		bright := 1 + 0.6*age/tMS
		s.setObservables(st, bright, 1)
	case age < tGiant:
		st.Type = Giant
		// Lose mass linearly toward the remnant mass across the giant
		// branch (strong winds / envelope ejection), starting from the
		// end-of-main-sequence mass so mass never increases.
		mEndMS := m0
		if m0 > 15 {
			mEndMS = 0.95 * m0
		}
		f := (age - tMS) / (tGiant - tMS)
		mRem := s.InitFinalMass(m0)
		preCollapse := mRem + (1-mRem/m0)*0.3*m0 // keeps most mass until collapse
		if preCollapse > mEndMS {
			preCollapse = mEndMS
		}
		st.Mass = mEndMS + f*(preCollapse-mEndMS)
		s.setObservables(st, 60, 25) // luminous, inflated
	default:
		// Remnant. Flag the supernova on the transition call.
		wasAlive := st.Type == MainSequence || st.Type == Giant
		mRem := s.InitFinalMass(m0)
		st.Mass = mRem
		switch {
		case m0 >= s.BHThreshold:
			st.Type = BlackHole
			st.Radius = 1e-5
			st.Luminosity = 1e-10
			st.Temperature = 0
			if wasAlive {
				st.Supernova = true
			}
		case m0 >= s.SNThreshold:
			st.Type = NeutronStar
			st.Radius = 1.4e-5 // ~10 km
			st.Luminosity = 1e-6
			st.Temperature = 1e6
			if wasAlive {
				st.Supernova = true
			}
		default:
			st.Type = WhiteDwarf
			st.Radius = 0.013
			st.Luminosity = 1e-3
			st.Temperature = 2e4
		}
	}
	return prevMass - st.Mass
}

// setObservables fills radius, luminosity and temperature from mass with
// main-sequence power laws times the given enhancement factors.
func (s *SSE) setObservables(st *Star, lFactor, rFactor float64) {
	m := st.Mass
	st.Luminosity = lFactor * math.Pow(m, 3.5)
	st.Radius = rFactor * math.Pow(m, 0.75)
	// T/Tsun = (L / R²)^(1/4)
	const tSun = 5772
	st.Temperature = tSun * math.Pow(st.Luminosity/(st.Radius*st.Radius), 0.25)
}

// Population evolves a set of stars together (the SSE worker's state).
type Population struct {
	Stars []Star
	sse   *SSE
	time  float64 // Myr

	supernovae int
	flops      float64
}

// NewPopulation creates a population from initial masses in MSun.
func NewPopulation(sse *SSE, masses []float64) (*Population, error) {
	p := &Population{sse: sse}
	for i, m := range masses {
		st, err := sse.NewStar(m)
		if err != nil {
			return nil, fmt.Errorf("star %d: %w", i, err)
		}
		p.Stars = append(p.Stars, st)
	}
	return p, nil
}

// Time returns the population age in Myr.
func (p *Population) Time() float64 { return p.time }

// Supernovae returns the cumulative explosion count.
func (p *Population) Supernovae() int { return p.supernovae }

// Restore replaces the population's evolving state with a checkpoint's:
// the per-star states (which are plain exported data), the population age
// and the cumulative supernova count. The SSE parameterization itself is
// configuration, not state, and is kept.
func (p *Population) Restore(stars []Star, timeMyr float64, supernovae int) {
	p.Stars = append(p.Stars[:0], stars...)
	p.time = timeMyr
	p.supernovae = supernovae
}

// Flops returns the accounted flop count.
func (p *Population) Flops() float64 { return p.flops }

// ResetFlops zeroes the counter and returns the prior value.
func (p *Population) ResetFlops() float64 {
	f := p.flops
	p.flops = 0
	return f
}

// EvolveTo advances every star to age tMyr and returns the per-star mass
// loss (MSun) since the previous call.
func (p *Population) EvolveTo(tMyr float64) []float64 {
	loss := make([]float64, len(p.Stars))
	for i := range p.Stars {
		loss[i] = p.sse.Evolve(&p.Stars[i], tMyr)
		if p.Stars[i].Supernova {
			p.supernovae++
		}
	}
	p.flops += FlopsPerStar * float64(len(p.Stars))
	if tMyr > p.time {
		p.time = tMyr
	}
	return loss
}

// TotalMass returns the current summed mass in MSun.
func (p *Population) TotalMass() float64 {
	var m float64
	for i := range p.Stars {
		m += p.Stars[i].Mass
	}
	return m
}
