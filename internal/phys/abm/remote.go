package abm

import (
	"context"
	"fmt"

	"jungle/internal/amuse/data"
	"jungle/internal/core/kernel"
)

// Caller is the coupler-side handle the Remote wrapper drives: typed RPCs
// plus the batched columnar state path. *core.Model satisfies it
// (structurally — this package does not import internal/core).
type Caller interface {
	Call(ctx context.Context, method string, args, reply any) error
	GetState(ctx context.Context, attrs ...string) (*kernel.StatePayload, error)
	SetState(ctx context.Context, st *kernel.StatePayload) error
}

// Field is the potential source the colony couples to, shaped like
// bridge.Field / core.FieldModel (again structural): any field kernel —
// nbody, tree, analytic — can bias the agents.
type Field interface {
	FieldAt(ctx context.Context, srcMass []float64, srcPos, targets []data.Vec3, eps float64) ([]data.Vec3, []float64, float64)
}

// Remote adapts a running abm worker to a typed colony handle.
type Remote struct {
	c Caller
	p Params
}

// NewRemote wraps a coupler-side model handle for a colony set up with p.
func NewRemote(c Caller, p Params) *Remote { return &Remote{c: c, p: p} }

// Step advances the colony n generations.
func (r *Remote) Step(ctx context.Context, n int) error {
	return r.c.Call(ctx, "step", StepArgs{Steps: n}, nil)
}

// Stats returns the colony's aggregate statistics (Flops carries the
// summed agent state).
func (r *Remote) Stats(ctx context.Context) (kernel.StatsResult, error) {
	var out kernel.StatsResult
	err := r.c.Call(ctx, "stats", kernel.Empty{}, &out)
	return out, err
}

// SeedState installs the deterministic initial colony for a seed.
func (r *Remote) SeedState(ctx context.Context, seed int64) error {
	st := kernel.NewState(r.p.W * r.p.H)
	st.AddFloat(AttrState, InitialU(r.p, seed))
	return r.c.SetState(ctx, st)
}

// State fetches the agent state column.
func (r *Remote) State(ctx context.Context) ([]float64, error) {
	st, err := r.c.GetState(ctx, AttrState)
	if err != nil {
		return nil, err
	}
	u := st.Float(AttrState)
	if u == nil {
		return nil, fmt.Errorf("abm: worker returned no %s column", AttrState)
	}
	return u, nil
}

// Positions fetches the agent positions (field-kernel targets).
func (r *Remote) Positions(ctx context.Context) ([]data.Vec3, error) {
	st, err := r.c.GetState(ctx, AttrPos)
	if err != nil {
		return nil, err
	}
	pos := st.Vec(AttrPos)
	if pos == nil {
		return nil, fmt.Errorf("abm: worker returned no %s column", AttrPos)
	}
	return pos, nil
}

// CouplePotential samples the external field at every agent and pushes
// the potential column to the colony — one leg of the reaction–diffusion-
// in-a-potential coupling loop (sample, then Step, then resample).
func (r *Remote) CouplePotential(ctx context.Context, f Field) error {
	pos, err := r.Positions(ctx)
	if err != nil {
		return err
	}
	_, pot, _ := f.FieldAt(ctx, nil, nil, pos, 0)
	if len(pot) != len(pos) {
		return fmt.Errorf("abm: field returned %d potentials for %d agents", len(pot), len(pos))
	}
	st := kernel.NewState(len(pos))
	st.AddFloat(AttrPotential, pot)
	return r.c.SetState(ctx, st)
}
