package abm

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"jungle/internal/core/kernel"
	"jungle/internal/deploy"
	"jungle/internal/mpisim"
	"jungle/internal/vtime"
)

// Kind is the worker kind this package registers. It does not exist in
// internal/core: registering and using it requires no core edits.
const Kind = "abm"

// Columnar attribute names of the agent layout. They are this kind's
// own vocabulary — the state payload carries attribute names verbatim,
// so a non-particle kind needs no additions to the amuse/data column
// set. Agent ids travel in the payload's key column.
const (
	AttrPos       = "agent_pos"       // vector: agent position
	AttrState     = "agent_state"     // float: the reacting, diffusing state
	AttrPotential = "agent_potential" // float: external potential at the agent
)

// abmEfficiency is this kernel family's sustained-efficiency calibration
// knob (stencil sweep over a columnar grid), in line with the other
// families' fits — see DESIGN.md.
const abmEfficiency = 2.5e-4

func init() {
	kernel.Register(Kind, newService)
}

// SetupArgs configures the colony (the "setup" call).
type SetupArgs struct {
	W, H int
	D    float64
	R    float64
	B    float64
	DT   float64
}

// StepArgs advances the colony a fixed number of generations.
type StepArgs struct {
	Steps int
}

// service hosts the agent-based worker — solo, or as one rank of a
// row-slab-decomposed gang (kernel.Shardable): every rank holds the full
// replicated colony, a step computes this rank's row slab of the next
// generation, and the slabs are exchanged over the gang's peer links
// before all ranks commit the identical assembled generation.
type service struct {
	res   *deploy.Resource
	host  string
	clock *vtime.Clock
	dev   *vtime.Device
	g     *Grid
	gi    *kernel.GangInfo
	gang  *mpisim.Gang
}

func newService(cfg kernel.Config) (kernel.Service, error) {
	s := &service{res: cfg.Res, clock: vtime.NewClock(), gi: cfg.Gang}
	if len(cfg.Hosts) > 0 {
		s.host = cfg.Hosts[0]
	}
	return s, nil
}

// SetGang implements kernel.Shardable: the worker host installs the wired
// communicator, which binds this service's clock so slab exchanges
// advance it like any other worker activity.
func (s *service) SetGang(g *mpisim.Gang) error {
	if s.gi == nil {
		return fmt.Errorf("abm: SetGang on a solo worker")
	}
	if g.ID() != s.gi.Rank || g.Size() != s.gi.Size {
		return fmt.Errorf("abm: gang %d/%d does not match configured rank %d/%d",
			g.ID(), g.Size(), s.gi.Rank, s.gi.Size)
	}
	g.Bind(s.clock)
	s.gang = g
	return nil
}

func (s *service) Close() {
	if s.gang != nil {
		s.gang.Close()
	}
}

func (s *service) Dispatch(method string, args []byte, at time.Duration) ([]byte, time.Duration, error) {
	s.clock.AdvanceTo(at)
	switch method {
	case "setup":
		var a SetupArgs
		if err := kernel.Decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		dev, err := kernel.PickDevice(s.res, false)
		if err != nil {
			return nil, s.clock.Now(), err
		}
		s.dev = kernel.NodeDerate(kernel.Derate(dev, abmEfficiency), s.res, s.host)
		g, err := NewGrid(Params{W: a.W, H: a.H, D: a.D, R: a.R, B: a.B, DT: a.DT})
		if err != nil {
			return nil, s.clock.Now(), err
		}
		s.g = g
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case "set_state":
		st, err := kernel.UnmarshalState(args)
		if err != nil {
			return nil, s.clock.Now(), err
		}
		if err := s.applyState(st); err != nil {
			return nil, s.clock.Now(), err
		}
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case "get_state":
		q, err := kernel.UnmarshalStateRequest(args)
		if err != nil {
			return nil, s.clock.Now(), err
		}
		if s.g == nil {
			return nil, s.clock.Now(), fmt.Errorf("abm: get_state before setup")
		}
		st := kernel.NewState(s.g.N())
		st.Key = s.g.Key
		for _, a := range q.Attrs {
			switch a {
			case AttrPos:
				st.AddVec(a, s.g.Pos)
			case AttrState:
				st.AddFloat(a, s.g.U)
			case AttrPotential:
				st.AddFloat(a, s.g.Phi)
			default:
				return nil, s.clock.Now(), fmt.Errorf("abm: get_state: unknown attribute %q", a)
			}
		}
		out, err := kernel.MarshalState(st)
		return out, s.clock.Now(), err
	case "step":
		var a StepArgs
		if err := kernel.Decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		if err := s.step(a.Steps); err != nil {
			return nil, s.clock.Now(), err
		}
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case "stats":
		if s.g == nil {
			return nil, s.clock.Now(), fmt.Errorf("abm: stats before setup")
		}
		return kernel.Encode(kernel.StatsResult{
			N: s.g.N(), Time: s.g.Time(), Steps: s.g.Steps(), Flops: s.g.TotalState(),
		}), s.clock.Now(), nil
	case kernel.MethodCheckpoint, kernel.MethodRestore:
		out, err := kernel.ServeCheckpoint(s, method, args)
		return out, s.clock.Now(), err
	default:
		return nil, s.clock.Now(), fmt.Errorf("%w: abm.%s", kernel.ErrNoSuchMethod, method)
	}
}

// step advances n generations — solo, or as one gang rank.
func (s *service) step(n int) error {
	if s.g == nil {
		return fmt.Errorf("abm: step before setup")
	}
	if n <= 0 {
		return fmt.Errorf("abm: step count %d", n)
	}
	if s.gang == nil {
		for i := 0; i < n; i++ {
			s.clock.Advance(s.dev.Time(s.g.Step(), 0))
		}
		return nil
	}
	// Gang path: compute this rank's row slab, account the compute on the
	// gang-bound clock, allgather the slabs, splice and commit. Every
	// agent's next state is computed by exactly one rank with the solo
	// formula, so the assembled generation is bit-identical to solo.
	size := s.gang.Size()
	for i := 0; i < n; i++ {
		lo, hi := SlabRows(s.g.P.H, size, s.gang.ID())
		flops := s.g.StepRows(lo, hi)
		mpisim.ComputeFlops(s.gang, s.dev, flops, 0)
		parts, err := mpisim.AllgatherBytes(s.gang, packFloats(s.g.NextRows(lo, hi)))
		if err != nil {
			return fmt.Errorf("abm: slab exchange: %w", err)
		}
		for rank, part := range parts {
			if rank == s.gang.ID() {
				continue
			}
			plo, phi := SlabRows(s.g.P.H, size, rank)
			u, err := unpackFloats(part)
			if err != nil {
				return fmt.Errorf("abm: slab from rank %d: %w", rank, err)
			}
			if err := s.g.SpliceRows(plo, phi, u); err != nil {
				return err
			}
		}
		s.g.Commit()
	}
	return nil
}

// applyState installs agent columns. The colony membership is fixed by
// setup (one agent per grid cell), so a payload must match the grid:
// state/potential columns replace wholesale, keys re-label.
func (s *service) applyState(st *kernel.StatePayload) error {
	if s.g == nil {
		return fmt.Errorf("abm: set_state before setup")
	}
	if st.N != s.g.N() {
		return fmt.Errorf("abm: state has %d agents, grid holds %d", st.N, s.g.N())
	}
	if len(st.Key) == st.N {
		copy(s.g.Key, st.Key)
	}
	for i, a := range st.FloatAttrs {
		switch a {
		case AttrState:
			copy(s.g.U, st.FloatCols[i])
		case AttrPotential:
			copy(s.g.Phi, st.FloatCols[i])
		default:
			return fmt.Errorf("abm: set_state: unknown attribute %q", a)
		}
	}
	for i, a := range st.VecAttrs {
		switch a {
		case AttrPos:
			copy(s.g.Pos, st.VecCols[i])
		default:
			return fmt.Errorf("abm: set_state: unknown attribute %q", a)
		}
	}
	return nil
}

// Snapshot implements kernel.Checkpointable: the full colony (keys,
// positions, state, potential) plus the model clock. Every gang rank
// holds bitwise-identical replicated state, so one rank's snapshot
// restores any rank.
func (s *service) Snapshot() (*kernel.Snapshot, error) {
	if s.g == nil {
		return nil, fmt.Errorf("abm: checkpoint before setup")
	}
	st := kernel.NewState(s.g.N())
	st.Key = s.g.Key
	st.AddVec(AttrPos, s.g.Pos)
	st.AddFloat(AttrState, s.g.U)
	st.AddFloat(AttrPotential, s.g.Phi)
	return &kernel.Snapshot{
		Kind: Kind, Model: s.g.Time(), Steps: s.g.Steps(),
		VTime: s.clock.Now(), State: st,
	}, nil
}

// Restore implements kernel.Checkpointable. Setup must have run (the
// snapshot carries dynamic state, not grid configuration).
func (s *service) Restore(snap *kernel.Snapshot) error {
	if err := snap.CheckKind(Kind); err != nil {
		return err
	}
	if s.g == nil {
		return fmt.Errorf("abm: restore before setup")
	}
	st := snap.State
	if st == nil || st.Float(AttrState) == nil {
		return fmt.Errorf("abm: restore: snapshot missing the agent state column")
	}
	if err := s.applyState(st); err != nil {
		return err
	}
	s.g.RestoreClock(snap.Model, snap.Steps)
	return nil
}

// packFloats encodes a float column for the slab exchange (bit patterns,
// little endian — the exchange must be bit-transparent).
func packFloats(x []float64) []byte {
	b := make([]byte, 8*len(x))
	for i, v := range x {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

func unpackFloats(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("abm: float column of %d bytes", len(b))
	}
	x := make([]float64, len(b)/8)
	for i := range x {
		x[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return x, nil
}
