// Package abm is the agent-based kernel kind: a grid of agents whose
// scalar state evolves by a deterministic reaction–diffusion rule biased
// by an external potential (BioDynaMo-style agent populations, reduced to
// the columnar essentials). The package registers the "abm" kind with the
// kernel registry from its init — like internal/phys/analytic, it is
// externally linked: internal/core needs no edits to host it.
//
// The kind exists to prove the registry/gang/checkpoint stack generalizes
// beyond particle kernels: agents carry their own columnar layout (agent
// id in the state payload's key column, "agent_pos", "agent_state" and
// "agent_potential" columns — names internal/core has never heard of),
// the service shards by grid-row slabs as a gang (kernel.Shardable), and
// snapshots round-trip the full colony (kernel.Checkpointable).
package abm

import (
	"fmt"

	"jungle/internal/amuse/data"
)

// Params are the colony's fixed dynamics parameters (the "setup" call).
type Params struct {
	W, H int     // grid extent: W agents per row, H rows
	D    float64 // diffusion coefficient between grid neighbors
	R    float64 // logistic reaction rate
	B    float64 // coupling strength to the external potential
	DT   float64 // model time per step
}

// Check validates the parameters.
func (p Params) Check() error {
	if p.W <= 0 || p.H <= 0 {
		return fmt.Errorf("abm: grid %dx%d is empty", p.W, p.H)
	}
	if p.DT <= 0 {
		return fmt.Errorf("abm: non-positive step DT=%v", p.DT)
	}
	return nil
}

// stepFlops is the per-agent cost of one update: the 5-point stencil,
// the logistic reaction and the potential bias.
const stepFlops = 12.0

// Grid is the colony state: one agent per grid cell, row-major. All
// updates read the previous generation and write the next, so every
// agent's update is independent — a gang rank computing rows [lo,hi)
// produces bit-identical values to a solo worker computing all rows.
type Grid struct {
	P   Params
	Key []uint64    // stable agent identifiers
	Pos []data.Vec3 // agent positions (cell centers; field-kernel targets)
	U   []float64   // agent state (the reacting, diffusing quantity)
	Phi []float64   // external potential sampled at each agent

	next  []float64 // next generation, written by StepRows
	time  float64
	steps int
}

// NewGrid builds an empty colony for the parameters.
func NewGrid(p Params) (*Grid, error) {
	if err := p.Check(); err != nil {
		return nil, err
	}
	n := p.W * p.H
	g := &Grid{
		P:    p,
		Key:  make([]uint64, n),
		Pos:  make([]data.Vec3, n),
		U:    make([]float64, n),
		Phi:  make([]float64, n),
		next: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		g.Key[i] = uint64(i)
		g.Pos[i] = CellPos(p, i)
	}
	return g, nil
}

// CellPos returns the canonical position of agent i: its cell center,
// with the grid mapped onto [-1,1]² in the x/y plane (the coordinate
// frame field kernels are queried in).
func CellPos(p Params, i int) data.Vec3 {
	x, y := i%p.W, i/p.W
	return data.Vec3{
		-1 + (2*float64(x)+1)/float64(p.W),
		-1 + (2*float64(y)+1)/float64(p.H),
		0,
	}
}

// N returns the agent count.
func (g *Grid) N() int { return g.P.W * g.P.H }

// Time returns the model time.
func (g *Grid) Time() float64 { return g.time }

// Steps returns the completed step count.
func (g *Grid) Steps() int { return g.steps }

// RestoreClock rewinds the model clock (checkpoint restore).
func (g *Grid) RestoreClock(t float64, steps int) { g.time, g.steps = t, steps }

// StepRows computes the next generation for grid rows [lo,hi) into the
// internal next buffer and returns the flop count spent. Boundaries are
// zero-flux: a missing neighbor contributes the cell's own state. The
// update is
//
//	u' = u + DT·(D·∇²u + R·u·(1−u) − B·φ·u)
//
// — diffusion over the grid, logistic reaction, and decay proportional
// to the external potential (reaction–diffusion in a potential).
func (g *Grid) StepRows(lo, hi int) float64 {
	w, h := g.P.W, g.P.H
	d, r, b, dt := g.P.D, g.P.R, g.P.B, g.P.DT
	for y := lo; y < hi; y++ {
		row := y * w
		for x := 0; x < w; x++ {
			i := row + x
			u := g.U[i]
			up, down, left, right := u, u, u, u
			if y > 0 {
				up = g.U[i-w]
			}
			if y < h-1 {
				down = g.U[i+w]
			}
			if x > 0 {
				left = g.U[i-1]
			}
			if x < w-1 {
				right = g.U[i+1]
			}
			lap := up + down + left + right - 4*u
			g.next[i] = u + dt*(d*lap+r*u*(1-u)-b*g.Phi[i]*u)
		}
	}
	return stepFlops * float64((hi-lo)*w)
}

// NextRows exposes the freshly computed slab [lo,hi) of the next
// generation (gang ranks exchange these slabs before committing).
func (g *Grid) NextRows(lo, hi int) []float64 {
	return g.next[lo*g.P.W : hi*g.P.W]
}

// SpliceRows writes a peer rank's slab of the next generation into rows
// [lo,hi).
func (g *Grid) SpliceRows(lo, hi int, u []float64) error {
	if len(u) != (hi-lo)*g.P.W {
		return fmt.Errorf("abm: slab rows [%d,%d) want %d values, got %d", lo, hi, (hi-lo)*g.P.W, len(u))
	}
	copy(g.next[lo*g.P.W:hi*g.P.W], u)
	return nil
}

// Commit swaps the completed next generation in and advances the model
// clock. Every rank of a gang commits the same assembled generation, so
// replicas stay bitwise identical.
func (g *Grid) Commit() {
	g.U, g.next = g.next, g.U
	g.time += g.P.DT
	g.steps++
}

// Step advances the whole colony one generation (the solo path) and
// returns the flop count spent.
func (g *Grid) Step() float64 {
	flops := g.StepRows(0, g.P.H)
	g.Commit()
	return flops
}

// TotalState returns the colony's summed agent state (the conserved-ish
// observable stats reports).
func (g *Grid) TotalState() float64 {
	var sum float64
	for _, u := range g.U {
		sum += u
	}
	return sum
}

// SlabRows returns the row range [lo,hi) rank owns in a gang of size
// ranks: contiguous near-equal slabs, remainder rows on the low ranks —
// every rank derives the same decomposition from (H, size) alone.
func SlabRows(h, size, rank int) (lo, hi int) {
	base, rem := h/size, h%size
	lo = rank*base + min(rank, rem)
	hi = lo + base
	if rank < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// splitmix64 is the deterministic seed expander behind InitialState —
// fixed here rather than borrowed from math/rand so the initial colony
// for a seed can never drift with a toolchain change.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// InitialU returns the deterministic initial agent state for a seed:
// each agent draws its state in [0,1) from a splitmix64 stream keyed by
// (seed, agent id). Two colonies with the same dimensions and seed are
// bitwise identical.
func InitialU(p Params, seed int64) []float64 {
	n := p.W * p.H
	u := make([]float64, n)
	for i := 0; i < n; i++ {
		bits := splitmix64(uint64(seed)*0x100000001b3 + uint64(i))
		u[i] = float64(bits>>11) / (1 << 53)
	}
	return u
}
