package abm

import (
	"math"
	"testing"
)

func testParams() Params {
	return Params{W: 16, H: 12, D: 0.2, R: 0.5, B: 0.3, DT: 0.01}
}

func seededGrid(t *testing.T, p Params, seed int64) *Grid {
	t.Helper()
	g, err := NewGrid(p)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	copy(g.U, InitialU(p, seed))
	for i := range g.Phi {
		g.Phi[i] = 0.1 * float64(i%7)
	}
	return g
}

func TestParamsCheck(t *testing.T) {
	cases := []Params{
		{W: 0, H: 4, DT: 0.1},
		{W: 4, H: 0, DT: 0.1},
		{W: 4, H: 4, DT: 0},
		{W: -1, H: 4, DT: 0.1},
	}
	for _, p := range cases {
		if _, err := NewGrid(p); err == nil {
			t.Errorf("NewGrid(%+v) accepted degenerate params", p)
		}
	}
}

func TestInitialUDeterministicAndBounded(t *testing.T) {
	p := testParams()
	a, b := InitialU(p, 42), InitialU(p, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("InitialU not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= 1 {
			t.Fatalf("InitialU[%d] = %v outside [0,1)", i, a[i])
		}
	}
	c := InitialU(p, 43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 42 and 43 produced identical colonies")
	}
}

// TestSlabRowsPartition checks the decomposition is a disjoint cover with
// near-equal contiguous slabs for every (h, size) shape.
func TestSlabRowsPartition(t *testing.T) {
	for h := 1; h <= 17; h++ {
		for size := 1; size <= 6; size++ {
			covered := 0
			prev := 0
			for rank := 0; rank < size; rank++ {
				lo, hi := SlabRows(h, size, rank)
				if lo != prev {
					t.Fatalf("h=%d size=%d rank=%d: slab [%d,%d) not contiguous after %d", h, size, rank, lo, hi, prev)
				}
				if hi-lo > h/size+1 || hi < lo {
					t.Fatalf("h=%d size=%d rank=%d: slab [%d,%d) unbalanced", h, size, rank, lo, hi)
				}
				covered += hi - lo
				prev = hi
			}
			if covered != h || prev != h {
				t.Fatalf("h=%d size=%d: slabs cover %d rows, end at %d", h, size, covered, prev)
			}
		}
	}
}

// TestSlabStepMatchesSolo runs the same colony solo and as a hand-driven
// K-slab decomposition and requires bitwise-equal generations — the
// property the gang path rests on.
func TestSlabStepMatchesSolo(t *testing.T) {
	p := testParams()
	solo := seededGrid(t, p, 7)
	for _, k := range []int{2, 3, 5} {
		sharded := seededGrid(t, p, 7)
		for step := 0; step < 20; step++ {
			solo.Step()
			for rank := 0; rank < k; rank++ {
				lo, hi := SlabRows(p.H, k, rank)
				sharded.StepRows(lo, hi)
			}
			sharded.Commit()
		}
		for i := range solo.U {
			if solo.U[i] != sharded.U[i] {
				t.Fatalf("K=%d: agent %d diverged: solo %v sharded %v", k, i, solo.U[i], sharded.U[i])
			}
		}
		// reset solo for the next K
		solo = seededGrid(t, p, 7)
	}
}

func TestPackFloatsRoundTrip(t *testing.T) {
	in := []float64{0, 1, -1, math.Pi, math.Inf(1), math.Copysign(0, -1), 1e-308}
	out, err := unpackFloats(packFloats(in))
	if err != nil {
		t.Fatalf("unpackFloats: %v", err)
	}
	for i := range in {
		if math.Float64bits(in[i]) != math.Float64bits(out[i]) {
			t.Fatalf("bit pattern %d changed: %x vs %x", i, math.Float64bits(in[i]), math.Float64bits(out[i]))
		}
	}
	if _, err := unpackFloats(make([]byte, 7)); err == nil {
		t.Fatal("unpackFloats accepted a truncated column")
	}
}

func TestSpliceRowsValidates(t *testing.T) {
	g := seededGrid(t, testParams(), 1)
	if err := g.SpliceRows(0, 2, make([]float64, 5)); err == nil {
		t.Fatal("SpliceRows accepted a wrong-sized slab")
	}
}

func TestGridClockAndStats(t *testing.T) {
	p := testParams()
	g := seededGrid(t, p, 3)
	for i := 0; i < 4; i++ {
		g.Step()
	}
	if g.Steps() != 4 {
		t.Fatalf("Steps() = %d, want 4", g.Steps())
	}
	if want := 4 * p.DT; math.Abs(g.Time()-want) > 1e-15 {
		t.Fatalf("Time() = %v, want %v", g.Time(), want)
	}
	if g.TotalState() <= 0 {
		t.Fatalf("TotalState() = %v, want positive", g.TotalState())
	}
	g.RestoreClock(0.5, 50)
	if g.Time() != 0.5 || g.Steps() != 50 {
		t.Fatalf("RestoreClock: time %v steps %d", g.Time(), g.Steps())
	}
}

func TestCellPosInUnitSquare(t *testing.T) {
	p := testParams()
	for i := 0; i < p.W*p.H; i++ {
		v := CellPos(p, i)
		if v[0] <= -1 || v[0] >= 1 || v[1] <= -1 || v[1] >= 1 || v[2] != 0 {
			t.Fatalf("CellPos(%d) = %v outside (-1,1)² x/y plane", i, v)
		}
	}
}
