package analytic

import (
	"context"
	"fmt"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/core/kernel"
	"jungle/internal/vtime"
)

// Kind is the worker kind this package registers. It does not exist in
// internal/core: registering and using it requires no core edits.
const Kind = "analytic"

func init() {
	kernel.Register(Kind, newService)
}

// SetupArgs configures the analytic worker.
type SetupArgs struct {
	M      float64
	A      float64
	Center data.Vec3
}

// service hosts the analytic background-field worker. The closed-form
// evaluation is so cheap that any CPU device model will do.
type service struct {
	clock *vtime.Clock
	dev   *vtime.Device
	pot   Plummer
}

func newService(cfg kernel.Config) (kernel.Service, error) {
	dev, err := kernel.PickDevice(cfg.Res, false)
	if err != nil {
		return nil, err
	}
	return &service{clock: vtime.NewClock(), dev: dev}, nil
}

func (s *service) Close() {}

func (s *service) Dispatch(method string, args []byte, at time.Duration) ([]byte, time.Duration, error) {
	s.clock.AdvanceTo(at)
	switch method {
	case "setup":
		var a SetupArgs
		if err := kernel.Decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		if a.M <= 0 || a.A <= 0 {
			return nil, s.clock.Now(), fmt.Errorf("analytic: non-positive mass or scale (M=%v, a=%v)", a.M, a.A)
		}
		s.pot = Plummer{M: a.M, A: a.A, Center: a.Center}
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case "field_at":
		var a kernel.FieldAtArgs
		if err := kernel.Decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		acc := make([]data.Vec3, len(a.Targets))
		pot := make([]float64, len(a.Targets))
		flops := s.pot.FieldAt(a.Targets, acc, pot)
		s.clock.Advance(s.dev.Time(flops, 0))
		return kernel.Encode(kernel.FieldAtResult{Acc: acc, Pot: pot}), s.clock.Now(), nil
	case "stats":
		return kernel.Encode(kernel.StatsResult{}), s.clock.Now(), nil
	case kernel.MethodCheckpoint, kernel.MethodRestore:
		out, err := kernel.ServeCheckpoint(s, method, args)
		return out, s.clock.Now(), err
	default:
		return nil, s.clock.Now(), fmt.Errorf("%w: analytic.%s", kernel.ErrNoSuchMethod, method)
	}
}

// Snapshot implements kernel.Checkpointable. A closed-form potential has
// no evolving state, but checkpointing the parameters keeps a resumed
// simulation honest even if the setup replay is ever skipped.
func (s *service) Snapshot() (*kernel.Snapshot, error) {
	return &kernel.Snapshot{
		Kind: Kind, VTime: s.clock.Now(),
		Extra: kernel.Encode(SetupArgs{M: s.pot.M, A: s.pot.A, Center: s.pot.Center}),
	}, nil
}

// Restore implements kernel.Checkpointable.
func (s *service) Restore(snap *kernel.Snapshot) error {
	if err := snap.CheckKind(Kind); err != nil {
		return err
	}
	var a SetupArgs
	if err := kernel.Decode(snap.Extra, &a); err != nil {
		return err
	}
	s.pot = Plummer{M: a.M, A: a.A, Center: a.Center}
	return nil
}

// Caller is the coupler-side handle the Remote wrapper drives: one typed
// RPC per call, bounded by the caller's context. *core.Model satisfies
// it.
type Caller interface {
	Call(ctx context.Context, method string, args, reply any) error
}

// Remote adapts a running analytic worker to the bridge.Field interface
// (structurally — this package does not import phys/bridge).
type Remote struct {
	c Caller
}

// NewRemote wraps a coupler-side model handle.
func NewRemote(c Caller) *Remote { return &Remote{c: c} }

// Name implements bridge.Field.
func (r *Remote) Name() string { return Kind }

// FieldAt implements bridge.Field. The analytic background ignores the
// source particles; eps is meaningless for a closed-form potential.
func (r *Remote) FieldAt(ctx context.Context, srcMass []float64, srcPos, targets []data.Vec3, eps float64) ([]data.Vec3, []float64, float64) {
	var out kernel.FieldAtResult
	if err := r.c.Call(ctx, "field_at", kernel.FieldAtArgs{Targets: targets}, &out); err != nil {
		return make([]data.Vec3, len(targets)), make([]float64, len(targets)), 0
	}
	return out.Acc, out.Pot, 0
}
