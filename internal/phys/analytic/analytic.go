// Package analytic implements a fast analytic background-potential kernel:
// a rigid Plummer sphere (a star cluster's parent galaxy or gas envelope)
// whose gravitational field is evaluated in closed form — no particles, no
// tree, O(targets) per call. It is the SE-style "nearly free" kernel class
// the paper contrasts with the expensive dynamical models.
//
// The package doubles as the proof of the pluggable kernel registry: it
// registers its worker kind ("analytic") with internal/core/kernel from
// init, entirely outside internal/core — a new scenario kernel is one new
// package plus an import. See examples/analytic-field.
package analytic

import (
	"math"

	"jungle/internal/amuse/data"
)

// FlopsPerTarget is the accounted cost of one closed-form field
// evaluation (a handful of multiplies plus one rsqrt).
const FlopsPerTarget = 20

// Plummer is a rigid Plummer-sphere potential (G = 1):
//
//	Φ(r) = −M / √(r² + a²)
type Plummer struct {
	M      float64   // total mass (N-body units)
	A      float64   // scale radius
	Center data.Vec3 // potential center
}

// FieldAt evaluates acceleration and potential at each target, in the
// same shape the coupling workers use. Source particles are ignored: the
// background is rigid. Returns the accounted flop count.
func (p Plummer) FieldAt(targets []data.Vec3, acc []data.Vec3, pot []float64) float64 {
	for i, t := range targets {
		d := t.Sub(p.Center)
		r2 := d.Norm2() + p.A*p.A
		inv := 1 / math.Sqrt(r2)
		pot[i] = -p.M * inv
		minv3 := p.M * inv * inv * inv
		acc[i][0] = -minv3 * d[0]
		acc[i][1] = -minv3 * d[1]
		acc[i][2] = -minv3 * d[2]
	}
	return FlopsPerTarget * float64(len(targets))
}
