package nbody

import (
	"fmt"

	"jungle/internal/amuse/data"
)

// Bulk column setters: the worker-side half of the batched state
// protocol. Each replaces a whole attribute column in one call and
// invalidates cached forces once, instead of N per-particle calls.

// Keys exposes the particles' stable identifiers (read-only by
// convention).
func (s *System) Keys() []uint64 { return s.keys }

// SetMasses replaces all particle masses.
func (s *System) SetMasses(m []float64) error {
	if len(m) != len(s.mass) {
		return fmt.Errorf("nbody: mass column length %d != N %d", len(m), len(s.mass))
	}
	copy(s.mass, m)
	s.fresh = false
	return nil
}

// SetPositions replaces all particle positions.
func (s *System) SetPositions(p []data.Vec3) error {
	if len(p) != len(s.pos) {
		return fmt.Errorf("nbody: position column length %d != N %d", len(p), len(s.pos))
	}
	copy(s.pos, p)
	s.fresh = false
	return nil
}

// SetVelocities replaces all particle velocities.
func (s *System) SetVelocities(v []data.Vec3) error {
	if len(v) != len(s.vel) {
		return fmt.Errorf("nbody: velocity column length %d != N %d", len(v), len(s.vel))
	}
	copy(s.vel, v)
	s.fresh = false
	return nil
}
