package nbody

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"jungle/internal/amuse/ic"
	"jungle/internal/mpisim"
)

// TestForcesSlabMatchesFull: slab rows of the interaction matrix equal
// the full evaluation's bit for bit, for both kernel variants and uneven
// slabs.
func TestForcesSlabMatchesFull(t *testing.T) {
	stars := ic.Plummer(101, 7)
	for _, k := range []Kernel{NewCPUKernel(cpuDev()), NewGPUKernel(gpuDev())} {
		var full, slab Forces
		k.Forces(stars.Mass, stars.Pos, stars.Vel, 1e-4, &full)
		slab.resize(len(stars.Mass))
		var flops float64
		for rank := 0; rank < 3; rank++ {
			lo, hi := mpisim.Slab(len(stars.Mass), rank, 3)
			flops += k.ForcesSlab(stars.Mass, stars.Pos, stars.Vel, 1e-4, lo, hi, &slab)
		}
		for i := range full.Acc {
			if full.Acc[i] != slab.Acc[i] || full.Jerk[i] != slab.Jerk[i] || full.Pot[i] != slab.Pot[i] {
				t.Fatalf("%s: row %d differs between full and slab evaluation", k.Name(), i)
			}
		}
		if want := FlopsPerPair * float64(len(stars.Mass)) * float64(len(stars.Mass)-1); flops != want {
			t.Fatalf("%s: slab flops %v, want %v", k.Name(), flops, want)
		}
	}
}

// runRanks evolves one replicated System per rank of a local gang and
// returns the rank systems (all bitwise identical afterwards).
func runRanks(t *testing.T, size int, evolveTo float64) []*System {
	t.Helper()
	stars := ic.Plummer(64, 11)
	gangs := mpisim.LocalGangs(size, 50*time.Microsecond)
	systems := make([]*System, size)
	for i := range systems {
		systems[i] = NewSystem(NewCPUKernel(cpuDev()), 0.01)
		systems[i].SetParticles(stars)
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for i := range systems {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = systems[i].EvolveToComm(context.Background(), evolveTo, gangs[i])
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		t.Fatal(err)
	}
	return systems
}

// TestShardedEvolutionMatchesSolo: a K-rank gang produces exactly the
// solo integrator's trajectory — domain decomposition is invisible in the
// results, the paper's Multi-Kernel property extended to gangs.
func TestShardedEvolutionMatchesSolo(t *testing.T) {
	const tEnd = 1.0 / 16
	stars := ic.Plummer(64, 11)
	solo := NewSystem(NewCPUKernel(cpuDev()), 0.01)
	solo.SetParticles(stars)
	if err := solo.EvolveTo(context.Background(), tEnd); err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{2, 3} {
		systems := runRanks(t, size, tEnd)
		for rank, sys := range systems {
			if sys.Steps() != solo.Steps() {
				t.Fatalf("size %d rank %d: %d steps, solo took %d", size, rank, sys.Steps(), solo.Steps())
			}
			for i := range solo.Positions() {
				if sys.Positions()[i] != solo.Positions()[i] || sys.Velocities()[i] != solo.Velocities()[i] {
					t.Fatalf("size %d rank %d: particle %d diverged from solo", size, rank, i)
				}
			}
		}
	}
}

// TestShardedEnergyReduce: EnergyComm's cross-rank reduction matches the
// solo energy bit for bit (fixed-order summation).
func TestShardedEnergyReduce(t *testing.T) {
	const size = 3
	stars := ic.Plummer(64, 11)
	solo := NewSystem(NewCPUKernel(cpuDev()), 0.01)
	solo.SetParticles(stars)
	kin0, pot0 := solo.Energy()

	gangs := mpisim.LocalGangs(size, 50*time.Microsecond)
	var wg sync.WaitGroup
	kins := make([]float64, size)
	pots := make([]float64, size)
	errs := make([]error, size)
	for i := 0; i < size; i++ {
		sys := NewSystem(NewCPUKernel(cpuDev()), 0.01)
		sys.SetParticles(stars)
		wg.Add(1)
		go func(i int, sys *System) {
			defer wg.Done()
			kins[i], pots[i], errs[i] = sys.EnergyComm(gangs[i])
		}(i, sys)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < size; i++ {
		// The reduction's fixed rank order differs from the solo loop's
		// index order, so allow float slack while requiring all ranks to
		// agree exactly.
		if math.Abs(kins[i]-kin0) > 1e-12*math.Abs(kin0) || math.Abs(pots[i]-pot0) > 1e-12*math.Abs(pot0) {
			t.Fatalf("rank %d energy (%v, %v), solo (%v, %v)", i, kins[i], pots[i], kin0, pot0)
		}
		if kins[i] != kins[0] || pots[i] != pots[0] {
			t.Fatalf("ranks disagree: rank %d (%v, %v) vs rank 0 (%v, %v)", i, kins[i], pots[i], kins[0], pots[0])
		}
	}
}

// TestShardedClockAdvances: sharded evolution charges compute and halo
// exchange to each rank's clock, and a bigger gang spends less virtual
// time per rank (the whole point of sharding).
func TestShardedClockAdvances(t *testing.T) {
	const tEnd = 1.0 / 32
	run := func(size int) time.Duration {
		stars := ic.Plummer(128, 3)
		gangs := mpisim.LocalGangs(size, 10*time.Microsecond)
		var wg sync.WaitGroup
		errs := make([]error, size)
		for i := 0; i < size; i++ {
			sys := NewSystem(NewCPUKernel(cpuDev()), 0.01)
			sys.SetParticles(stars)
			wg.Add(1)
			go func(i int, sys *System) {
				defer wg.Done()
				errs[i] = sys.EvolveToComm(context.Background(), tEnd, gangs[i])
			}(i, sys)
		}
		wg.Wait()
		if err := errors.Join(errs...); err != nil {
			t.Fatal(err)
		}
		var max time.Duration
		for _, g := range gangs {
			if now := g.Clock().Now(); now > max {
				max = now
			}
		}
		return max
	}
	t2, t4 := run(2), run(4)
	if t2 == 0 || t4 == 0 {
		t.Fatalf("clocks did not advance: K=2 %v, K=4 %v", t2, t4)
	}
	if t4 >= t2 {
		t.Fatalf("K=4 (%v) not faster than K=2 (%v)", t4, t2)
	}
}
