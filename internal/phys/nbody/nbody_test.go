package nbody

import (
	"context"
	"math"
	"testing"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/amuse/ic"
	"jungle/internal/vtime"
)

func cpuDev() *vtime.Device {
	return &vtime.Device{Name: "core2", Kind: vtime.CPU, Gflops: 1.0, Cores: 4}
}

func gpuDev() *vtime.Device {
	return &vtime.Device{Name: "tesla", Kind: vtime.GPU, Gflops: 150, Cores: 1,
		LaunchLatency: 30 * time.Microsecond}
}

// twoBody builds a circular binary: masses m1=m2=0.5 at unit separation.
// With G=1, the circular orbital speed of each body is 0.5·sqrt(2) around
// the COM... more precisely for total mass M=1, separation a=1: relative
// circular velocity v=sqrt(M/a)=1; each body moves at 0.5.
func twoBody() *data.Particles {
	p := data.NewParticles(2)
	p.Mass[0], p.Mass[1] = 0.5, 0.5
	p.Pos[0] = data.Vec3{-0.5, 0, 0}
	p.Pos[1] = data.Vec3{0.5, 0, 0}
	p.Vel[0] = data.Vec3{0, -0.5, 0}
	p.Vel[1] = data.Vec3{0, 0.5, 0}
	return p
}

func TestTwoBodyEnergyConservation(t *testing.T) {
	s := NewSystem(NewCPUKernel(cpuDev()), 0)
	s.Eta = 0.01
	s.SetParticles(twoBody())
	k0, u0 := s.Energy()
	e0 := k0 + u0
	if err := s.EvolveTo(context.Background(), 10); err != nil { // several orbits
		t.Fatal(err)
	}
	k1, u1 := s.Energy()
	e1 := k1 + u1
	if rel := math.Abs((e1 - e0) / e0); rel > 1e-8 {
		t.Fatalf("energy drift %v after 10 time units", rel)
	}
	if math.Abs(s.Time()-10) > 1e-12 {
		t.Fatalf("time = %v", s.Time())
	}
}

func TestTwoBodyPeriod(t *testing.T) {
	// Circular binary with a=1, M=1: period = 2π. After one period the
	// bodies return to their initial positions.
	s := NewSystem(NewCPUKernel(cpuDev()), 0)
	s.Eta = 0.005
	p := twoBody()
	s.SetParticles(p)
	if err := s.EvolveTo(context.Background(), 2*math.Pi); err != nil {
		t.Fatal(err)
	}
	out := p.Clone()
	if err := s.GetParticles(out); err != nil {
		t.Fatal(err)
	}
	for i := range out.Pos {
		if d := out.Pos[i].Sub(p.Pos[i]).Norm(); d > 1e-3 {
			t.Fatalf("body %d displaced %v after one period", i, d)
		}
	}
}

func TestPlummerEnergyConservation(t *testing.T) {
	stars := ic.Plummer(64, 11)
	s := NewSystem(NewCPUKernel(cpuDev()), 0.01)
	s.Eta = 0.01
	s.SetParticles(stars)
	k0, u0 := s.Energy()
	e0 := k0 + u0
	if err := s.EvolveTo(context.Background(), 0.25); err != nil {
		t.Fatal(err)
	}
	k1, u1 := s.Energy()
	if rel := math.Abs((k1 + u1 - e0) / e0); rel > 1e-5 {
		t.Fatalf("energy drift %v", rel)
	}
}

// TestKernelsBitIdentical is the Multi-Kernel property: the CPU and GPU
// kernels must produce exactly the same forces and, after integration,
// exactly the same trajectories.
func TestKernelsBitIdentical(t *testing.T) {
	stars := ic.Plummer(300, 5)
	var fc, fg Forces
	cpu := NewCPUKernel(cpuDev())
	gpu := NewGPUKernel(gpuDev())
	cpu.Forces(stars.Mass, stars.Pos, stars.Vel, 1e-4, &fc)
	gpu.Forces(stars.Mass, stars.Pos, stars.Vel, 1e-4, &fg)
	for i := range fc.Acc {
		for d := 0; d < 3; d++ {
			if math.Float64bits(fc.Acc[i][d]) != math.Float64bits(fg.Acc[i][d]) {
				t.Fatalf("acc[%d][%d] differs: %x vs %x", i, d, fc.Acc[i][d], fg.Acc[i][d])
			}
			if math.Float64bits(fc.Jerk[i][d]) != math.Float64bits(fg.Jerk[i][d]) {
				t.Fatalf("jerk[%d][%d] differs", i, d)
			}
		}
		if math.Float64bits(fc.Pot[i]) != math.Float64bits(fg.Pot[i]) {
			t.Fatalf("pot[%d] differs", i)
		}
	}

	// And full trajectories.
	s1 := NewSystem(cpu, 0.01)
	s2 := NewSystem(gpu, 0.01)
	s1.SetParticles(stars)
	s2.SetParticles(stars)
	if err := s1.EvolveTo(context.Background(), 0.05); err != nil {
		t.Fatal(err)
	}
	if err := s2.EvolveTo(context.Background(), 0.05); err != nil {
		t.Fatal(err)
	}
	p1, p2 := s1.Positions(), s2.Positions()
	for i := range p1 {
		for d := 0; d < 3; d++ {
			if math.Float64bits(p1[i][d]) != math.Float64bits(p2[i][d]) {
				t.Fatalf("trajectory diverged at particle %d", i)
			}
		}
	}
}

// TestCPUParallelismDeterministic: worker count must not change results.
func TestCPUParallelismDeterministic(t *testing.T) {
	stars := ic.Plummer(128, 3)
	k1 := NewCPUKernel(cpuDev())
	k1.Goroutines = 1
	k8 := NewCPUKernel(cpuDev())
	k8.Goroutines = 8
	var f1, f8 Forces
	k1.Forces(stars.Mass, stars.Pos, stars.Vel, 1e-4, &f1)
	k8.Forces(stars.Mass, stars.Pos, stars.Vel, 1e-4, &f8)
	for i := range f1.Acc {
		if f1.Acc[i] != f8.Acc[i] {
			t.Fatalf("worker count changed acc[%d]", i)
		}
	}
}

func TestFlopAccounting(t *testing.T) {
	stars := ic.Plummer(50, 1)
	s := NewSystem(NewCPUKernel(cpuDev()), 0.01)
	s.SetParticles(stars)
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	// One step needs >= 2 force evaluations (initial + corrector).
	wantMin := 2 * FlopsPerPair * 50.0 * 49.0
	if s.Flops() < wantMin {
		t.Fatalf("flops = %v, want >= %v", s.Flops(), wantMin)
	}
	prev := s.ResetFlops()
	if prev == 0 || s.Flops() != 0 {
		t.Fatal("ResetFlops broken")
	}
}

func TestKickChangesVelocities(t *testing.T) {
	s := NewSystem(NewCPUKernel(cpuDev()), 0)
	s.SetParticles(twoBody())
	kick := []data.Vec3{{1, 0, 0}, {1, 0, 0}}
	if err := s.Kick(context.Background(), kick); err != nil {
		t.Fatal(err)
	}
	if s.Velocities()[0] != (data.Vec3{1, -0.5, 0}) {
		t.Fatalf("vel after kick: %v", s.Velocities()[0])
	}
	if err := s.Kick(context.Background(), []data.Vec3{{1, 0, 0}}); err == nil {
		t.Fatal("short kick accepted")
	}
}

func TestSetMassAffectsDynamics(t *testing.T) {
	// Dropping the companion's mass to ~0 must unbind a circular binary.
	s := NewSystem(NewCPUKernel(cpuDev()), 0)
	s.SetParticles(twoBody())
	s.SetMass(0, 1e-9)
	s.SetMass(1, 1e-9)
	if err := s.EvolveTo(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	// With (almost) no gravity the bodies coast: separation grows ~ v_rel·t.
	sep := s.Positions()[1].Sub(s.Positions()[0]).Norm()
	if sep < 1.5 {
		t.Fatalf("separation = %v, want ballistic growth", sep)
	}
}

func TestEvolveEmptySystem(t *testing.T) {
	s := NewSystem(NewCPUKernel(cpuDev()), 0)
	if err := s.EvolveTo(context.Background(), 1); err != ErrNoParticles {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Step(); err != ErrNoParticles {
		t.Fatalf("err = %v", err)
	}
}

func TestGetParticlesSizeMismatch(t *testing.T) {
	s := NewSystem(NewCPUKernel(cpuDev()), 0)
	s.SetParticles(twoBody())
	if err := s.GetParticles(data.NewParticles(3)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestSofteningLimitsForce(t *testing.T) {
	// Two particles at tiny separation: with softening the acceleration is
	// bounded by ~m/eps².
	p := data.NewParticles(2)
	p.Mass[0], p.Mass[1] = 1, 1
	p.Pos[1] = data.Vec3{1e-8, 0, 0}
	var f Forces
	NewCPUKernel(cpuDev()).Forces(p.Mass, p.Pos, p.Vel, 0.01*0.01, &f)
	if a := f.Acc[0].Norm(); a > 1/(0.01*0.01) {
		t.Fatalf("softened acc = %v exceeds m/eps²", a)
	}
}

func TestGPUDeviceModelFaster(t *testing.T) {
	// The virtual-time model must make the GPU kernel dramatically faster
	// for the same flops — the paper's scenario 1 vs 2.
	flops := 60.0 * 1000 * 999 * 100 // 100 evaluations of a 1k system
	tc := cpuDev().Time(flops, 4)
	tg := gpuDev().Time(flops, 1)
	if tg >= tc/10 {
		t.Fatalf("GPU %v not >=10x faster than CPU %v", tg, tc)
	}
}
