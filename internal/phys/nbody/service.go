package nbody

import (
	"context"
	"fmt"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/core/kernel"
	"jungle/internal/deploy"
	"jungle/internal/mpisim"
	"jungle/internal/vtime"
)

// KindGravity is the worker kind this package registers: the PhiGRAPE
// equivalent (Fig. 3's gravitational-dynamics box).
const KindGravity = "gravity"

// gravityEfficiency is this kernel family's sustained-efficiency
// calibration knob (Hermite direct summation); fitted jointly with the
// other families against §6.2's scenario numbers — see DESIGN.md.
const gravityEfficiency = 1.842e-4

func init() {
	kernel.Register(KindGravity, newGravityService)
}

// gravityService hosts the PhiGRAPE worker — solo, or as one rank of a
// domain-decomposed gang (kernel.Shardable): every rank holds the full
// replicated particle arrays, evolve computes this rank's slab of the
// interaction matrix and exchanges the slab forces over the gang's peer
// links, and energies reduce across ranks.
type gravityService struct {
	res   *deploy.Resource
	host  string // the node this rank runs on (per-node speed derating)
	clock *vtime.Clock
	sys   *System
	dev   *vtime.Device
	gi    *kernel.GangInfo
	gang  *mpisim.Gang
}

func newGravityService(cfg kernel.Config) (kernel.Service, error) {
	s := &gravityService{res: cfg.Res, clock: vtime.NewClock(), gi: cfg.Gang}
	if len(cfg.Hosts) > 0 {
		s.host = cfg.Hosts[0]
	}
	return s, nil
}

// Reshard implements kernel.Reshardable: install new slab boundaries.
// The coupler broadcasts the same cuts to every rank between evolves, so
// all ranks switch decomposition at the same gang epoch.
func (s *gravityService) Reshard(cuts []int) error {
	if s.gi == nil {
		return fmt.Errorf("nbody: reshard on a solo worker")
	}
	if s.sys == nil {
		return fmt.Errorf("nbody: reshard before setup")
	}
	return s.sys.SetCuts(cuts, s.gi.Size)
}

// SetGang implements kernel.Shardable: the worker host installs the wired
// communicator, which binds this service's clock so halo exchanges and
// reductions advance it like any other worker activity.
func (s *gravityService) SetGang(g *mpisim.Gang) error {
	if s.gi == nil {
		return fmt.Errorf("nbody: SetGang on a solo worker")
	}
	if g.ID() != s.gi.Rank || g.Size() != s.gi.Size {
		return fmt.Errorf("nbody: gang %d/%d does not match configured rank %d/%d",
			g.ID(), g.Size(), s.gi.Rank, s.gi.Size)
	}
	g.Bind(s.clock)
	s.gang = g
	return nil
}

func (s *gravityService) Close() {
	if s.gang != nil {
		s.gang.Close()
	}
}

func (s *gravityService) Dispatch(method string, args []byte, at time.Duration) ([]byte, time.Duration, error) {
	s.clock.AdvanceTo(at)
	switch method {
	case "setup":
		var a kernel.SetupGravityArgs
		if err := kernel.Decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		wantGPU := a.Kernel == "phigrape-gpu"
		dev, err := kernel.PickDevice(s.res, wantGPU)
		if err != nil {
			return nil, s.clock.Now(), err
		}
		s.dev = kernel.NodeDerate(kernel.Derate(dev, gravityEfficiency), s.res, s.host)
		var k Kernel
		if wantGPU {
			k = NewGPUKernel(s.dev)
		} else {
			k = NewCPUKernel(s.dev)
		}
		s.sys = NewSystem(k, a.Eps)
		if a.Eta > 0 {
			s.sys.Eta = a.Eta
		}
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case "set_particles":
		var pl kernel.ParticlesPayload
		if err := kernel.Decode(args, &pl); err != nil {
			return nil, s.clock.Now(), err
		}
		s.sys.SetParticles(kernel.PayloadToParticles(pl))
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case "evolve":
		var a kernel.EvolveArgs
		if err := kernel.Decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		if s.gang != nil {
			// Sharded: EvolveToComm accounts compute and halo exchange
			// on this clock (bound by SetGang) as they happen.
			if err := s.sys.EvolveToComm(context.Background(), a.T, s.gang); err != nil {
				return nil, s.clock.Now(), err
			}
			return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
		}
		if err := s.sys.EvolveTo(context.Background(), a.T); err != nil {
			return nil, s.clock.Now(), err
		}
		s.clock.Advance(s.dev.Time(s.sys.ResetFlops(), 0))
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case "kick":
		var a kernel.KickArgs
		if err := kernel.Decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		if err := s.sys.Kick(context.Background(), a.DV); err != nil {
			return nil, s.clock.Now(), err
		}
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case "get_positions":
		return kernel.Encode(kernel.VecResult{V: append([]data.Vec3(nil), s.sys.Positions()...)}), s.clock.Now(), nil
	case "get_velocities":
		return kernel.Encode(kernel.VecResult{V: append([]data.Vec3(nil), s.sys.Velocities()...)}), s.clock.Now(), nil
	case "get_masses":
		return kernel.Encode(kernel.FloatsResult{X: append([]float64(nil), s.sys.Masses()...)}), s.clock.Now(), nil
	case "get_state":
		q, err := kernel.UnmarshalStateRequest(args)
		if err != nil {
			return nil, s.clock.Now(), err
		}
		st := kernel.NewState(s.sys.N())
		st.Key = s.sys.Keys()
		for _, a := range q.Attrs {
			switch a {
			case data.AttrMass:
				st.AddFloat(a, s.sys.Masses())
			case data.AttrPos:
				st.AddVec(a, s.sys.Positions())
			case data.AttrVel:
				st.AddVec(a, s.sys.Velocities())
			default:
				return nil, s.clock.Now(), fmt.Errorf("nbody: get_state: unknown attribute %q", a)
			}
		}
		out, err := kernel.MarshalState(st)
		return out, s.clock.Now(), err
	case "set_state":
		st, err := kernel.UnmarshalState(args)
		if err != nil {
			return nil, s.clock.Now(), err
		}
		if err := s.applyState(st); err != nil {
			return nil, s.clock.Now(), err
		}
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case "set_mass":
		var a kernel.SetMassArgs
		if err := kernel.Decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		if a.Index < 0 || a.Index >= s.sys.N() {
			return nil, s.clock.Now(), fmt.Errorf("nbody: set_mass index %d out of range", a.Index)
		}
		s.sys.SetMass(a.Index, a.Mass)
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case "energies":
		if s.gang != nil {
			k, p, err := s.sys.EnergyComm(s.gang)
			if err != nil {
				return nil, s.clock.Now(), err
			}
			return kernel.Encode(kernel.EnergiesResult{Kinetic: k, Potential: p}), s.clock.Now(), nil
		}
		k, p := s.sys.Energy()
		s.clock.Advance(s.dev.Time(s.sys.ResetFlops(), 0))
		return kernel.Encode(kernel.EnergiesResult{Kinetic: k, Potential: p}), s.clock.Now(), nil
	case "stats":
		return kernel.Encode(kernel.StatsResult{N: s.sys.N(), Time: s.sys.Time(), Steps: s.sys.Steps()}), s.clock.Now(), nil
	case kernel.MethodReshard:
		var a kernel.ReshardArgs
		if err := kernel.Decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		if err := s.Reshard(a.Cuts); err != nil {
			return nil, s.clock.Now(), err
		}
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case kernel.MethodRankLoad:
		if s.gi == nil || s.sys == nil {
			return nil, s.clock.Now(), fmt.Errorf("nbody: rank_load needs a gang rank after setup")
		}
		rows, compute := s.sys.TakeLoad(s.gi.Rank, s.gi.Size)
		return kernel.Encode(kernel.RankLoadResult{
			Rank: s.gi.Rank, Rows: rows, ComputeNs: compute.Nanoseconds(),
		}), s.clock.Now(), nil
	case kernel.MethodCheckpoint, kernel.MethodRestore:
		out, err := kernel.ServeCheckpoint(s, method, args)
		return out, s.clock.Now(), err
	default:
		return nil, s.clock.Now(), fmt.Errorf("%w: gravity.%s", kernel.ErrNoSuchMethod, method)
	}
}

// Snapshot implements kernel.Checkpointable: the full phase-space state
// (mass, position, velocity, keys) plus the integrator clock. Every gang
// rank holds bitwise-identical replicated state, so one rank's snapshot
// restores any rank.
func (s *gravityService) Snapshot() (*kernel.Snapshot, error) {
	if s.sys == nil {
		return nil, fmt.Errorf("nbody: checkpoint before setup")
	}
	st := kernel.NewState(s.sys.N())
	st.Key = s.sys.Keys()
	st.AddFloat(data.AttrMass, s.sys.Masses())
	st.AddVec(data.AttrPos, s.sys.Positions())
	st.AddVec(data.AttrVel, s.sys.Velocities())
	return &kernel.Snapshot{
		Kind: KindGravity, Model: s.sys.Time(), Steps: s.sys.Steps(),
		VTime: s.clock.Now(), State: st,
	}, nil
}

// Restore implements kernel.Checkpointable. Setup must have run (the
// snapshot carries dynamic state, not kernel configuration); the particle
// membership is replaced wholesale.
func (s *gravityService) Restore(snap *kernel.Snapshot) error {
	if err := snap.CheckKind(KindGravity); err != nil {
		return err
	}
	if s.sys == nil {
		return fmt.Errorf("nbody: restore before setup")
	}
	st := snap.State
	if st == nil || st.Float(data.AttrMass) == nil || st.Vec(data.AttrPos) == nil || st.Vec(data.AttrVel) == nil {
		return fmt.Errorf("nbody: restore: snapshot missing mass/position/velocity columns")
	}
	p := data.NewParticles(st.N)
	if len(st.Key) == st.N {
		copy(p.Key, st.Key)
	}
	if err := kernel.ScatterState(p, st); err != nil {
		return err
	}
	s.sys.SetParticles(p)
	s.sys.RestoreClock(snap.Model, snap.Steps)
	return nil
}

func (s *gravityService) applyState(st *kernel.StatePayload) error {
	for i, a := range st.FloatAttrs {
		switch a {
		case data.AttrMass:
			if err := s.sys.SetMasses(st.FloatCols[i]); err != nil {
				return err
			}
		default:
			return fmt.Errorf("nbody: set_state: unknown attribute %q", a)
		}
	}
	for i, a := range st.VecAttrs {
		switch a {
		case data.AttrPos:
			if err := s.sys.SetPositions(st.VecCols[i]); err != nil {
				return err
			}
		case data.AttrVel:
			if err := s.sys.SetVelocities(st.VecCols[i]); err != nil {
				return err
			}
		default:
			return fmt.Errorf("nbody: set_state: unknown attribute %q", a)
		}
	}
	return nil
}
