package nbody

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"jungle/internal/amuse/data"
)

// sqrt is split out so kernels share one call site (keeps CPU/GPU arithmetic
// visibly identical).
func sqrt(x float64) float64 { return math.Sqrt(x) }

// ErrNoParticles is returned when evolving an empty system.
var ErrNoParticles = errors.New("nbody: no particles")

// System is a PhiGRAPE-style direct N-body integrator: shared adaptive
// timestep, 4th-order Hermite predictor–corrector. All state is in N-body
// units (G=1).
type System struct {
	// Eps is the Plummer softening length.
	Eps float64
	// Eta is the dimensionless timestep accuracy parameter (default 0.02).
	Eta float64
	// DtMax caps the shared timestep (default 1/64 time unit).
	DtMax float64

	time float64
	mass []float64
	pos  []data.Vec3
	vel  []data.Vec3
	keys []uint64

	kernel Kernel
	f0, f1 Forces
	fresh  bool // f0 matches current state

	flops float64
	steps int

	// Sharded-evolution state (shard.go): explicit slab boundaries set by
	// the elastic-gang rebalancer (nil = uniform decomposition) and the
	// per-rank slab compute-time accumulator behind the rank_load query.
	cuts        []int
	loadCompute time.Duration
}

// NewSystem returns an empty system using the given kernel.
func NewSystem(kernel Kernel, eps float64) *System {
	return &System{Eps: eps, Eta: 0.02, DtMax: 1.0 / 64, kernel: kernel}
}

// Kernel returns the active force kernel.
func (s *System) Kernel() Kernel { return s.kernel }

// SetKernel swaps the force kernel (Multi-Kernel switching: results are
// unaffected; the performance model changes).
func (s *System) SetKernel(k Kernel) { s.kernel = k }

// SetParticles loads mass, position and velocity from the set.
func (s *System) SetParticles(p *data.Particles) {
	n := p.Len()
	s.mass = append(s.mass[:0], p.Mass...)
	s.pos = append(s.pos[:0], p.Pos...)
	s.vel = append(s.vel[:0], p.Vel...)
	s.keys = append(s.keys[:0], p.Key...)
	s.fresh = false
	_ = n
}

// GetParticles writes the current state back into the set (by index; the
// set must be the same membership that was loaded).
func (s *System) GetParticles(p *data.Particles) error {
	if p.Len() != len(s.mass) {
		return fmt.Errorf("nbody: set has %d particles, system has %d", p.Len(), len(s.mass))
	}
	copy(p.Mass, s.mass)
	copy(p.Pos, s.pos)
	copy(p.Vel, s.vel)
	return nil
}

// RestoreClock rewinds (or forwards) the integrator's model clock and step
// count to a checkpoint's values. The caller must have restored the
// matching phase-space state first; forces are recomputed from it on the
// next step, so a restored system continues bit-identically to the run
// that took the snapshot.
func (s *System) RestoreClock(t float64, steps int) {
	s.time = t
	s.steps = steps
	s.fresh = false
}

// N returns the particle count.
func (s *System) N() int { return len(s.mass) }

// Time returns the current model time.
func (s *System) Time() float64 { return s.time }

// Steps returns the number of integrator steps taken.
func (s *System) Steps() int { return s.steps }

// Flops returns the accumulated accounted flop count.
func (s *System) Flops() float64 { return s.flops }

// ResetFlops zeroes the flop counter and returns the prior value.
func (s *System) ResetFlops() float64 {
	f := s.flops
	s.flops = 0
	return f
}

// Positions exposes the internal position slice (read-only by convention;
// used by the coupling model to evaluate cross-system forces).
func (s *System) Positions() []data.Vec3 { return s.pos }

// Velocities exposes the internal velocity slice.
func (s *System) Velocities() []data.Vec3 { return s.vel }

// Masses exposes the internal mass slice.
func (s *System) Masses() []float64 { return s.mass }

// SetMass updates the mass of particle i (stellar mass loss pushed in by
// the coupler between dynamical steps).
func (s *System) SetMass(i int, m float64) {
	s.mass[i] = m
	s.fresh = false
}

// Kick applies velocity increments (BRIDGE coupling kicks from an external
// field). len(dv) must equal N. The kick is a single cheap pass; the
// context is only checked on entry.
func (s *System) Kick(ctx context.Context, dv []data.Vec3) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(dv) != len(s.vel) {
		return fmt.Errorf("nbody: kick length %d != N %d", len(dv), len(s.vel))
	}
	for i := range s.vel {
		s.vel[i] = s.vel[i].Add(dv[i])
	}
	s.fresh = false
	return nil
}

// Energy returns (kinetic, potential) at the current state. The potential
// is computed with the force kernel (counted in flops).
func (s *System) Energy() (kin, pot float64) {
	s.refreshForces()
	for i := range s.mass {
		kin += 0.5 * s.mass[i] * s.vel[i].Norm2()
		pot += 0.5 * s.mass[i] * s.f0.Pot[i]
	}
	return kin, pot
}

func (s *System) refreshForces() {
	if s.fresh {
		return
	}
	s.flops += s.kernel.Forces(s.mass, s.pos, s.vel, s.Eps*s.Eps, &s.f0)
	s.fresh = true
}

// sharedTimestep returns the Aarseth-style shared step
// eta · min_i sqrt(|a_i| / |j_i|), clamped to (0, DtMax].
func (s *System) sharedTimestep() float64 {
	dt := s.DtMax
	for i := range s.mass {
		a := s.f0.Acc[i].Norm()
		j := s.f0.Jerk[i].Norm()
		if j > 0 && a > 0 {
			if d := s.Eta * math.Sqrt(a/j); d < dt {
				dt = d
			}
		}
	}
	if dt <= 0 || math.IsNaN(dt) {
		dt = 1e-8
	}
	return dt
}

// Step advances the system by one shared Hermite step, returning the dt
// taken.
func (s *System) Step() (float64, error) {
	if len(s.mass) == 0 {
		return 0, ErrNoParticles
	}
	s.refreshForces()
	dt := s.sharedTimestep()
	s.advance(dt)
	return dt, nil
}

// EvolveTo advances the system to model time t (it does not step past t:
// the final step is shortened to land exactly). The context is polled
// between shared steps, so cancellation aborts a long integration at the
// next step boundary with the state consistent.
func (s *System) EvolveTo(ctx context.Context, t float64) error {
	if len(s.mass) == 0 {
		return ErrNoParticles
	}
	for s.time < t-1e-15 {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.refreshForces()
		dt := s.sharedTimestep()
		if s.time+dt > t {
			dt = t - s.time
		}
		s.advance(dt)
	}
	return nil
}

// advance performs one predictor-evaluate-correct Hermite update with step
// dt. s.f0 must be fresh.
func (s *System) advance(dt float64) {
	n := len(s.mass)
	dt2 := dt * dt / 2
	dt3 := dt * dt * dt / 6

	oldPos := append([]data.Vec3(nil), s.pos...)
	oldVel := append([]data.Vec3(nil), s.vel...)

	// Predict.
	for i := 0; i < n; i++ {
		a, j := s.f0.Acc[i], s.f0.Jerk[i]
		s.pos[i] = s.pos[i].
			Add(oldVel[i].Scale(dt)).
			Add(a.Scale(dt2)).
			Add(j.Scale(dt3))
		s.vel[i] = s.vel[i].
			Add(a.Scale(dt)).
			Add(j.Scale(dt2))
	}

	// Evaluate at prediction.
	s.flops += s.kernel.Forces(s.mass, s.pos, s.vel, s.Eps*s.Eps, &s.f1)

	// Correct (Hermite 4th order, Makino & Aarseth 1992 form).
	for i := 0; i < n; i++ {
		a0, j0 := s.f0.Acc[i], s.f0.Jerk[i]
		a1, j1 := s.f1.Acc[i], s.f1.Jerk[i]
		// v_corr = v_old + dt/2 (a0+a1) + dt²/12 (j0−j1)
		s.vel[i] = oldVel[i].
			Add(a0.Add(a1).Scale(dt / 2)).
			Add(j0.Sub(j1).Scale(dt * dt / 12))
		// x_corr = x_old + dt/2 (v_old+v_corr) + dt²/12 (a0−a1)
		s.pos[i] = oldPos[i].
			Add(oldVel[i].Add(s.vel[i]).Scale(dt / 2)).
			Add(a0.Sub(a1).Scale(dt * dt / 12))
	}

	s.time += dt
	s.steps++
	s.fresh = false
}
