package nbody

import (
	"context"
	"fmt"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/core/kernel"
	"jungle/internal/mpisim"
)

// Sharded evolution: the system runs domain-decomposed across the ranks
// of a communicator (in production, a gang of worker processes — see
// internal/core/kernel's gang contract). Every rank holds the full
// replicated particle arrays; each Hermite force evaluation computes only
// this rank's slab of the interaction matrix (N²/K of the work) and the
// slab results — acceleration, jerk, potential of the boundary-and-
// interior particles the other ranks are missing — are exchanged as
// columnar StatePayload blobs over the gang's peer links, the same
// column-stream codec the direct data plane uses for state transfers.
// Because every rank ends each exchange with bit-identical full arrays
// and the shared timestep is computed from them deterministically, a K-
// rank gang produces exactly the solo integrator's results; only the
// virtual-time cost changes (compute shrinks by ~K, the halo exchange is
// priced by the vnet links between the rank hosts).

// Halo column names (the exchanged per-slab force columns).
const (
	haloAcc  = "acc"
	haloJerk = "jerk"
	haloPot  = "pot"
)

// SetCuts installs explicit slab boundaries for sharded evolution (the
// elastic-gang reshard hook). cuts must be a valid size+1 boundary
// vector over the current particle count; nil restores the uniform
// decomposition. Because every rank holds full replicated arrays,
// moving a boundary needs no state movement and cannot change results.
func (s *System) SetCuts(cuts []int, size int) error {
	if cuts == nil {
		s.cuts = nil
		return nil
	}
	if err := mpisim.ValidCuts(cuts, len(s.mass), size); err != nil {
		return fmt.Errorf("nbody: reshard: %w", err)
	}
	s.cuts = append([]int(nil), cuts...)
	return nil
}

// Cuts returns the installed slab boundaries (nil = uniform).
func (s *System) Cuts() []int { return s.cuts }

// slabRange returns rank's row range under the installed cuts.
func (s *System) slabRange(rank, size int) (lo, hi int) {
	return mpisim.CutRange(s.cuts, rank, len(s.mass), size)
}

// TakeLoad returns this rank's current slab width and the virtual
// compute time accumulated by slab force work since the previous call,
// resetting the accumulator (the rank_load query).
func (s *System) TakeLoad(rank, size int) (rows int, compute time.Duration) {
	lo, hi := s.slabRange(rank, size)
	compute = s.loadCompute
	s.loadCompute = 0
	return hi - lo, compute
}

// forcesComm evaluates this rank's slab into out and allgathers the slab
// columns so every rank holds the full force arrays. Compute is accounted
// on the communicator's clock; exchange time comes from the link models.
func (s *System) forcesComm(c mpisim.Comm, lo, hi int, out *Forces) error {
	flops := s.kernel.ForcesSlab(s.mass, s.pos, s.vel, s.Eps*s.Eps, lo, hi, out)
	mpisim.ComputeFlops(c, s.kernel.Device(), flops, 0)
	s.loadCompute += s.kernel.Device().Time(flops, 0)

	st := kernel.NewState(hi - lo)
	st.AddVec(haloAcc, out.Acc[lo:hi]).
		AddVec(haloJerk, out.Jerk[lo:hi]).
		AddFloat(haloPot, out.Pot[lo:hi])
	blob, err := kernel.MarshalState(st)
	if err != nil {
		return fmt.Errorf("nbody: encode halo: %w", err)
	}
	blobs, err := mpisim.AllgatherBytes(c, blob)
	if err != nil {
		return fmt.Errorf("nbody: halo exchange: %w", err)
	}
	n := len(s.mass)
	for p, b := range blobs {
		if p == c.ID() {
			continue
		}
		plo, phi := mpisim.CutRange(s.cuts, p, n, c.Size())
		pst, err := kernel.UnmarshalState(b)
		if err != nil {
			return fmt.Errorf("nbody: decode halo from rank %d: %w", p, err)
		}
		acc, jerk, pot := pst.Vec(haloAcc), pst.Vec(haloJerk), pst.Float(haloPot)
		if pst.N != phi-plo || acc == nil || jerk == nil || pot == nil {
			return fmt.Errorf("nbody: halo from rank %d: want %d rows of acc/jerk/pot, got N=%d", p, phi-plo, pst.N)
		}
		copy(out.Acc[plo:phi], acc)
		copy(out.Jerk[plo:phi], jerk)
		copy(out.Pot[plo:phi], pot)
	}
	return nil
}

// EvolveToComm advances the system to model time t as rank c.ID() of a
// gang. All ranks must call it with the same t. Compute and exchange time
// are accounted on the communicator's clock as they happen (callers must
// not re-account ResetFlops); the flop counter is not touched.
func (s *System) EvolveToComm(ctx context.Context, t float64, c mpisim.Comm) error {
	if c == nil || c.Size() == 1 {
		// Degenerate gang: fall back to the solo path, but keep this
		// call's accounting contract (advance the clock here, not via
		// ResetFlops in the caller).
		if err := s.EvolveTo(ctx, t); err != nil {
			return err
		}
		if c != nil {
			mpisim.ComputeFlops(c, s.kernel.Device(), s.ResetFlops(), 0)
		}
		return nil
	}
	n := len(s.mass)
	if n == 0 {
		return ErrNoParticles
	}
	for s.time < t-1e-15 {
		// All ranks poll the same ctx: worker services evolve under
		// Background, and a test cancelling a gang cancels every rank's
		// context, so the collective schedule stays aligned.
		if err := ctx.Err(); err != nil {
			return err
		}
		// Re-read the slab range every step: a reshard lands between
		// evolve calls, but re-reading here keeps the range honest if a
		// future caller ever reshards inside a long evolve window.
		lo, hi := s.slabRange(c.ID(), c.Size())
		// Refresh forces at the current state (the solo path's fresh
		// cache does not span decompositions), mirroring EvolveTo's
		// refresh-evaluate pair so step counts and results match the
		// solo integrator exactly.
		if err := s.forcesComm(c, lo, hi, &s.f0); err != nil {
			return err
		}
		dt := s.sharedTimestep() // full arrays: identical on every rank
		if s.time+dt > t {
			dt = t - s.time
		}
		if err := s.advanceComm(c, lo, hi, dt); err != nil {
			return err
		}
	}
	s.fresh = false
	return nil
}

// advanceComm is one sharded predictor-evaluate-correct Hermite step.
// s.f0 must hold the full force arrays (forcesComm).
func (s *System) advanceComm(c mpisim.Comm, lo, hi int, dt float64) error {
	n := len(s.mass)
	dt2 := dt * dt / 2
	dt3 := dt * dt * dt / 6

	oldPos := append([]data.Vec3(nil), s.pos...)
	oldVel := append([]data.Vec3(nil), s.vel...)

	// Predict all particles (O(N), replicated on every rank).
	for i := 0; i < n; i++ {
		a, j := s.f0.Acc[i], s.f0.Jerk[i]
		s.pos[i] = s.pos[i].
			Add(oldVel[i].Scale(dt)).
			Add(a.Scale(dt2)).
			Add(j.Scale(dt3))
		s.vel[i] = s.vel[i].
			Add(a.Scale(dt)).
			Add(j.Scale(dt2))
	}

	// Evaluate at prediction: slab + halo exchange (O(N²/K) + columns).
	if err := s.forcesComm(c, lo, hi, &s.f1); err != nil {
		return err
	}

	// Correct all particles (Hermite 4th order, Makino & Aarseth 1992).
	for i := 0; i < n; i++ {
		a0, j0 := s.f0.Acc[i], s.f0.Jerk[i]
		a1, j1 := s.f1.Acc[i], s.f1.Jerk[i]
		s.vel[i] = oldVel[i].
			Add(a0.Add(a1).Scale(dt / 2)).
			Add(j0.Sub(j1).Scale(dt * dt / 12))
		s.pos[i] = oldPos[i].
			Add(oldVel[i].Add(s.vel[i]).Scale(dt / 2)).
			Add(a0.Sub(a1).Scale(dt * dt / 12))
	}

	s.time += dt
	s.steps++
	return nil
}

// EnergyComm returns (kinetic, potential) computed cooperatively: each
// rank evaluates its slab's potential and partial sums, and one
// AllreduceSum over the gang's peer links produces the totals on every
// rank. Compute is accounted on the communicator's clock.
func (s *System) EnergyComm(c mpisim.Comm) (kin, pot float64, err error) {
	if c == nil || c.Size() == 1 {
		k, p := s.Energy()
		if c != nil {
			mpisim.ComputeFlops(c, s.kernel.Device(), s.ResetFlops(), 0)
		}
		return k, p, nil
	}
	n := len(s.mass)
	if n == 0 {
		return 0, 0, ErrNoParticles
	}
	lo, hi := s.slabRange(c.ID(), c.Size())
	flops := s.kernel.ForcesSlab(s.mass, s.pos, s.vel, s.Eps*s.Eps, lo, hi, &s.f0)
	mpisim.ComputeFlops(c, s.kernel.Device(), flops, 0)
	partial := make([]float64, 2)
	for i := lo; i < hi; i++ {
		partial[0] += 0.5 * s.mass[i] * s.vel[i].Norm2()
		partial[1] += 0.5 * s.mass[i] * s.f0.Pot[i]
	}
	total, err := mpisim.AllreduceSum(c, partial)
	if err != nil {
		return 0, 0, fmt.Errorf("nbody: energy reduce: %w", err)
	}
	s.fresh = false // f0 holds only this rank's slab
	return total[0], total[1], nil
}
