// Package nbody reimplements the paper's gravitational-dynamics model:
// a PhiGRAPE-equivalent direct-summation N-body integrator (4th-order
// Hermite predictor–corrector, Harfst et al. 2006) with two kernels — CPU
// and GPU — that produce bit-identical results but carry different
// performance models. That is the paper's Multi-Kernel property: "which
// kernel is used has no influence in the result of the simulation, but may
// have a dramatic effect on performance".
//
// The same property extends across processes: the integrator also runs
// domain-decomposed as a gang of rank workers (EvolveToComm /
// kernel.Shardable in shard.go), each computing a spatial slab of the
// interaction matrix and exchanging halo force columns over the gang's
// peer links — still bit-identical to the solo integrator, with the
// virtual compute cost divided by the gang size.
package nbody

import (
	"runtime"
	"sync"

	"jungle/internal/amuse/data"
	"jungle/internal/vtime"
)

// FlopsPerPair is the accounted flop cost of one force+jerk+potential
// pairwise interaction (the usual ~60 flop figure for Hermite kernels,
// counting the rsqrt as several flops).
const FlopsPerPair = 60

// Forces holds the output of one force evaluation.
type Forces struct {
	Acc  []data.Vec3
	Jerk []data.Vec3
	Pot  []float64 // per-particle potential (for energy diagnostics)
}

func (f *Forces) resize(n int) {
	if cap(f.Acc) < n {
		f.Acc = make([]data.Vec3, n)
		f.Jerk = make([]data.Vec3, n)
		f.Pot = make([]float64, n)
	}
	f.Acc = f.Acc[:n]
	f.Jerk = f.Jerk[:n]
	f.Pot = f.Pot[:n]
}

// Kernel evaluates forces for a particle state. Implementations must be
// deterministic and agree bit-for-bit: the accumulation order over j is
// fixed (ascending), so CPU row-parallelism, GPU tiling and gang slab
// decomposition cannot change results.
type Kernel interface {
	// Name identifies the kernel variant ("phigrape-cpu", "phigrape-gpu").
	Name() string
	// Device returns the performance model used for virtual-time accounting.
	Device() *vtime.Device
	// Forces computes acc, jerk and potential for every particle.
	// It returns the accounted flop count.
	Forces(mass []float64, pos, vel []data.Vec3, eps2 float64, out *Forces) float64
	// ForcesSlab computes rows [lo, hi) of the interaction matrix only —
	// the per-rank share of a domain-decomposed gang. The out slices are
	// sized for the full system; rows outside the slab are left as they
	// were. It returns the accounted flop count for the slab.
	ForcesSlab(mass []float64, pos, vel []data.Vec3, eps2 float64, lo, hi int, out *Forces) float64
}

// pairInteraction accumulates the contribution of particle j on particle i.
// Shared by both kernels so their arithmetic is identical by construction;
// what differs between them is traversal structure and the device model.
func pairInteraction(mj float64, dp, dv data.Vec3, eps2 float64,
	acc, jerk *data.Vec3, pot *float64) {
	r2 := dp.Norm2() + eps2
	// r^-3 via sqrt; identical instruction sequence in both kernels.
	r1 := sqrt(r2)
	rinv := 1 / r1
	rinv2 := rinv * rinv
	rinv3 := rinv * rinv2
	mrinv3 := mj * rinv3

	acc[0] += mrinv3 * dp[0]
	acc[1] += mrinv3 * dp[1]
	acc[2] += mrinv3 * dp[2]

	rv := dp.Dot(dv) * rinv2 * 3
	jerk[0] += mrinv3 * (dv[0] - rv*dp[0])
	jerk[1] += mrinv3 * (dv[1] - rv*dp[1])
	jerk[2] += mrinv3 * (dv[2] - rv*dp[2])

	*pot -= mj * rinv
}

// CPUKernel is the PhiGRAPE CPU variant: rows of the interaction matrix are
// computed in parallel across cores; each row accumulates over j in
// ascending order.
type CPUKernel struct {
	dev *vtime.Device
	// Goroutines caps the worker count (defaults to GOMAXPROCS).
	Goroutines int
}

// NewCPUKernel returns a CPU kernel accounted against dev.
func NewCPUKernel(dev *vtime.Device) *CPUKernel { return &CPUKernel{dev: dev} }

// Name implements Kernel.
func (k *CPUKernel) Name() string { return "phigrape-cpu" }

// Device implements Kernel.
func (k *CPUKernel) Device() *vtime.Device { return k.dev }

// Forces implements Kernel.
func (k *CPUKernel) Forces(mass []float64, pos, vel []data.Vec3, eps2 float64, out *Forces) float64 {
	return k.ForcesSlab(mass, pos, vel, eps2, 0, len(mass), out)
}

// ForcesSlab implements Kernel: rows [lo, hi) are split across cores;
// each row accumulates over all j in ascending order, so slab results
// equal the full evaluation's bit for bit.
func (k *CPUKernel) ForcesSlab(mass []float64, pos, vel []data.Vec3, eps2 float64, lo, hi int, out *Forces) float64 {
	n := len(mass)
	out.resize(n)
	rows := hi - lo
	if rows <= 0 {
		return 0
	}
	workers := k.Goroutines
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > rows {
		workers = rows
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		wlo, whi := lo+w*chunk, lo+(w+1)*chunk
		if whi > hi {
			whi = hi
		}
		if wlo >= whi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				var acc, jerk data.Vec3
				var pot float64
				pi, vi := pos[i], vel[i]
				for j := 0; j < n; j++ {
					if j == i {
						continue
					}
					dp := pos[j].Sub(pi)
					dv := vel[j].Sub(vi)
					pairInteraction(mass[j], dp, dv, eps2, &acc, &jerk, &pot)
				}
				out.Acc[i] = acc
				out.Jerk[i] = jerk
				out.Pot[i] = pot
			}
		}(wlo, whi)
	}
	wg.Wait()
	return FlopsPerPair * float64(rows) * float64(n-1)
}

// gpuTile mirrors the j-tiling of CUDA N-body kernels (shared-memory tiles).
const gpuTile = 256

// GPUKernel is the PhiGRAPE GPU (CUDA) variant: the interaction matrix is
// processed in j-tiles as a GPU would stage bodies through shared memory.
// Tiles iterate in ascending j order, so results equal the CPU kernel's
// bit for bit; only the device performance model differs.
type GPUKernel struct {
	dev *vtime.Device
}

// NewGPUKernel returns a GPU kernel accounted against dev.
func NewGPUKernel(dev *vtime.Device) *GPUKernel { return &GPUKernel{dev: dev} }

// Name implements Kernel.
func (k *GPUKernel) Name() string { return "phigrape-gpu" }

// Device implements Kernel.
func (k *GPUKernel) Device() *vtime.Device { return k.dev }

// Forces implements Kernel.
func (k *GPUKernel) Forces(mass []float64, pos, vel []data.Vec3, eps2 float64, out *Forces) float64 {
	return k.ForcesSlab(mass, pos, vel, eps2, 0, len(mass), out)
}

// ForcesSlab implements Kernel: rows [lo, hi) iterate the j-tiles in
// ascending order, so slab results equal the full evaluation's bit for
// bit.
func (k *GPUKernel) ForcesSlab(mass []float64, pos, vel []data.Vec3, eps2 float64, lo, hi int, out *Forces) float64 {
	n := len(mass)
	out.resize(n)
	rows := hi - lo
	if rows <= 0 {
		return 0
	}
	workers := runtime.GOMAXPROCS(0) // host-side threads standing in for SMs
	if workers > rows {
		workers = rows
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		wlo, whi := lo+w*chunk, lo+(w+1)*chunk
		if whi > hi {
			whi = hi
		}
		if wlo >= whi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				var acc, jerk data.Vec3
				var pot float64
				pi, vi := pos[i], vel[i]
				for t0 := 0; t0 < n; t0 += gpuTile {
					t1 := t0 + gpuTile
					if t1 > n {
						t1 = n
					}
					for j := t0; j < t1; j++ {
						if j == i {
							continue
						}
						dp := pos[j].Sub(pi)
						dv := vel[j].Sub(vi)
						pairInteraction(mass[j], dp, dv, eps2, &acc, &jerk, &pot)
					}
				}
				out.Acc[i] = acc
				out.Jerk[i] = jerk
				out.Pot[i] = pot
			}
		}(wlo, whi)
	}
	wg.Wait()
	return FlopsPerPair * float64(rows) * float64(n-1)
}
