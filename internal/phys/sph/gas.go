package sph

import (
	"context"
	"errors"
	"fmt"
	"math"
	stdtime "time"

	"jungle/internal/amuse/data"
	"jungle/internal/mpisim"
	"jungle/internal/phys/tree"
	"jungle/internal/vtime"
)

// Flop cost constants per neighbor interaction.
const (
	flopsPerDensityPair = 40
	flopsPerForcePair   = 90
)

// ErrNoGas is returned when evolving an empty gas system.
var ErrNoGas = errors.New("sph: no particles")

// Gas is a Gadget-equivalent SPH system in N-body units (G=1).
type Gas struct {
	// Gamma is the adiabatic index (default 5/3).
	Gamma float64
	// Alpha, Beta are Monaghan viscosity parameters (defaults 1, 2).
	Alpha, Beta float64
	// CFL is the Courant factor (default 0.25).
	CFL float64
	// NTarget is the desired neighbor count for adaptive h (default 50).
	NTarget int
	// SelfGravity enables tree self-gravity (default true).
	SelfGravity bool
	// EpsGrav is the gravitational softening (default 0.01).
	EpsGrav float64
	// Theta is the gravity tree opening angle (default 0.6).
	Theta float64
	// DtMax caps the timestep.
	DtMax float64
	// HMin and HMax clamp smoothing lengths.
	HMin, HMax float64

	time float64
	mass []float64
	pos  []data.Vec3
	vel  []data.Vec3
	u    []float64
	h    []float64
	rho  []float64
	prs  []float64
	cs   []float64

	flops float64
	steps int

	// Sharded-evolution state: explicit slab boundaries from the
	// elastic-gang rebalancer (nil = uniform) and the per-rank slab
	// compute-time accumulator behind the rank_load query.
	cuts        []int
	loadCompute stdtime.Duration
}

// SetCuts installs explicit slab boundaries for sharded evolution (the
// elastic-gang reshard hook); nil restores the uniform decomposition.
// The SPH exchanges allgather variable-length rank slabs in rank order,
// so only the local row ranges change — results are unaffected.
func (g *Gas) SetCuts(cuts []int, size int) error {
	if cuts == nil {
		g.cuts = nil
		return nil
	}
	if err := mpisim.ValidCuts(cuts, len(g.mass), size); err != nil {
		return fmt.Errorf("sph: reshard: %w", err)
	}
	g.cuts = append([]int(nil), cuts...)
	return nil
}

// Cuts returns the installed slab boundaries (nil = uniform).
func (g *Gas) Cuts() []int { return g.cuts }

// cutsFor returns the installed cuts when they match the communicator
// size (gang ranks); a multi-node World of a different size keeps the
// uniform decomposition.
func (g *Gas) cutsFor(size int) []int {
	if len(g.cuts) == size+1 {
		return g.cuts
	}
	return nil
}

// TakeLoad returns this rank's current slab width and the virtual
// compute time accumulated by slab work since the previous call,
// resetting the accumulator (the rank_load query).
func (g *Gas) TakeLoad(rank, size int) (rows int, compute stdtime.Duration) {
	lo, hi := mpisim.CutRange(g.cutsFor(size), rank, len(g.mass), size)
	compute = g.loadCompute
	g.loadCompute = 0
	return hi - lo, compute
}

// New returns an empty gas system with default parameters.
func New() *Gas {
	return &Gas{
		Gamma: 5.0 / 3.0, Alpha: 1, Beta: 2, CFL: 0.25, NTarget: 50,
		SelfGravity: true, EpsGrav: 0.01, Theta: 0.6, DtMax: 1.0 / 64,
		HMin: 1e-4, HMax: 10,
	}
}

// SetParticles loads gas state from a particle set. Particles must carry
// positive InternalEnergy and SmoothingLen.
func (g *Gas) SetParticles(p *data.Particles) error {
	for i := 0; i < p.Len(); i++ {
		if p.InternalEnergy[i] <= 0 {
			return fmt.Errorf("sph: particle %d has non-positive internal energy", i)
		}
		if p.SmoothingLen[i] <= 0 {
			return fmt.Errorf("sph: particle %d has non-positive smoothing length", i)
		}
	}
	n := p.Len()
	g.mass = append(g.mass[:0], p.Mass...)
	g.pos = append(g.pos[:0], p.Pos...)
	g.vel = append(g.vel[:0], p.Vel...)
	g.u = append(g.u[:0], p.InternalEnergy...)
	g.h = append(g.h[:0], p.SmoothingLen...)
	g.rho = make([]float64, n)
	g.prs = make([]float64, n)
	g.cs = make([]float64, n)
	return nil
}

// GetParticles writes gas state back to a set of matching size.
func (g *Gas) GetParticles(p *data.Particles) error {
	if p.Len() != len(g.mass) {
		return fmt.Errorf("sph: set has %d particles, system has %d", p.Len(), len(g.mass))
	}
	copy(p.Mass, g.mass)
	copy(p.Pos, g.pos)
	copy(p.Vel, g.vel)
	copy(p.InternalEnergy, g.u)
	copy(p.SmoothingLen, g.h)
	copy(p.Density, g.rho)
	return nil
}

// N returns the particle count.
func (g *Gas) N() int { return len(g.mass) }

// Time returns the model time.
func (g *Gas) Time() float64 { return g.time }

// Steps returns the number of steps taken.
func (g *Gas) Steps() int { return g.steps }

// RestoreClock rewinds (or forwards) the model clock and step count to a
// checkpoint's values. The caller must have restored mass/pos/vel/u/h
// first; density, pressure and sound speed are recomputed at the start of
// the next step, so a restored system continues bit-identically to the
// run that took the snapshot.
func (g *Gas) RestoreClock(t float64, steps int) {
	g.time = t
	g.steps = steps
}

// Flops returns accumulated accounted flops (per-rank work is accounted on
// each rank's clock when run under a world; this counter is the total).
func (g *Gas) Flops() float64 { return g.flops }

// ResetFlops zeroes the counter and returns the prior value.
func (g *Gas) ResetFlops() float64 {
	f := g.flops
	g.flops = 0
	return f
}

// Positions exposes internal positions (for coupling field evaluation).
func (g *Gas) Positions() []data.Vec3 { return g.pos }

// Velocities exposes internal velocities.
func (g *Gas) Velocities() []data.Vec3 { return g.vel }

// Masses exposes internal masses.
func (g *Gas) Masses() []float64 { return g.mass }

// Kick applies external velocity increments (BRIDGE coupling). The kick
// is a single cheap pass; the context is only checked on entry.
func (g *Gas) Kick(ctx context.Context, dv []data.Vec3) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(dv) != len(g.vel) {
		return fmt.Errorf("sph: kick length %d != N %d", len(dv), len(g.mass))
	}
	for i := range g.vel {
		g.vel[i] = g.vel[i].Add(dv[i])
	}
	return nil
}

// InjectEnergy deposits total thermal energy e (N-body units) into the gas
// particles within radius of center, shared mass-weighted — the supernova
// feedback that drives the paper's gas expulsion (Fig. 6). If no particle
// lies inside the radius, the nearest particle receives everything. Returns
// the number of particles heated.
func (g *Gas) InjectEnergy(center data.Vec3, radius, e float64) int {
	if len(g.mass) == 0 || e <= 0 {
		return 0
	}
	var idx []int
	for i := range g.pos {
		if g.pos[i].Sub(center).Norm() <= radius {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		best, bestD := 0, math.Inf(1)
		for i := range g.pos {
			if d := g.pos[i].Sub(center).Norm(); d < bestD {
				best, bestD = i, d
			}
		}
		idx = []int{best}
	}
	var mTot float64
	for _, i := range idx {
		mTot += g.mass[i]
	}
	for _, i := range idx {
		g.u[i] += e / mTot // specific energy: each particle gets e·(m_i/mTot)/m_i
	}
	return len(idx)
}

// ThermalEnergy returns Σ m·u without touching gravity (cheap diagnostic).
func (g *Gas) ThermalEnergy() float64 {
	var e float64
	for i := range g.mass {
		e += g.mass[i] * g.u[i]
	}
	return e
}

// Energy returns (kinetic, thermal, potential) energies. Potential is zero
// unless SelfGravity is on.
func (g *Gas) Energy() (kin, therm, pot float64) {
	for i := range g.mass {
		kin += 0.5 * g.mass[i] * g.vel[i].Norm2()
		therm += g.mass[i] * g.u[i]
	}
	if g.SelfGravity && len(g.mass) > 1 {
		tr := tree.Build(g.mass, g.pos)
		acc := make([]data.Vec3, len(g.mass))
		p := make([]float64, len(g.mass))
		g.flops += tr.Accel(g.pos, g.EpsGrav, g.Theta, acc, p)
		for i := range g.mass {
			pot += 0.5 * g.mass[i] * p[i]
		}
	}
	return kin, therm, pot
}

// maxH returns the largest smoothing length (sets the neighbor search
// radius).
func (g *Gas) maxH() float64 {
	m := g.HMin
	for _, h := range g.h {
		if h > m {
			m = h
		}
	}
	return m
}

// EvolveTo advances the gas serially to time t. The context is polled
// between SPH steps, so cancellation aborts a long integration at the
// next step boundary.
func (g *Gas) EvolveTo(ctx context.Context, t float64) error {
	return g.evolve(ctx, t, nil, nil, true)
}

// EvolveToParallel advances the gas to time t data-parallel over the world:
// each rank computes a slab of the density and force loops, exchanges
// results via allgathers (recorded as "mpi" traffic) and accounts its share
// of the compute on its own clock against dev. The goroutine ranks share
// this one Gas; rank 0 publishes the (bitwise identical) result.
func (g *Gas) EvolveToParallel(ctx context.Context, t float64, w *mpisim.World, dev *vtime.Device) error {
	if w == nil {
		return g.evolve(ctx, t, nil, dev, true)
	}
	return w.Run(func(r *mpisim.Rank) error {
		return g.evolve(ctx, t, r, dev, r.ID() == 0)
	})
}

// EvolveToComm advances the gas to time t as one rank of a gang of worker
// processes (the same slab/exchange schedule as EvolveToParallel, but the
// exchanges cross the gang's peer links and the compute is accounted on
// the communicator's bound clock). Every rank owns its own replicated Gas
// and publishes the result.
func (g *Gas) EvolveToComm(ctx context.Context, t float64, c mpisim.Comm, dev *vtime.Device) error {
	return g.evolve(ctx, t, c, dev, true)
}

// evolve is the shared driver. With c == nil it runs the whole domain
// serially; with a communicator it computes only the rank's slab and
// allgathers. All ranks execute identical step sequences, so the full
// arrays remain bitwise identical across ranks after each exchange;
// publish selects which callers write the canonical result back into g
// (the serial caller, World rank 0 — whose goroutine ranks share one Gas
// — and every gang rank, which each own their replica).
func (g *Gas) evolve(ctx context.Context, t float64, r mpisim.Comm, dev *vtime.Device, publish bool) error {
	n := len(g.mass)
	if n == 0 {
		return ErrNoGas
	}
	// Rank-local working copies (identical across ranks after exchanges).
	pos := append([]data.Vec3(nil), g.pos...)
	vel := append([]data.Vec3(nil), g.vel...)
	u := append([]float64(nil), g.u...)
	h := append([]float64(nil), g.h...)
	rho := make([]float64, n)
	prs := make([]float64, n)
	cs := make([]float64, n)
	acc := make([]data.Vec3, n)
	dudt := make([]float64, n)

	lo, hi := 0, n
	if r != nil {
		lo, hi = mpisim.CutRange(g.cutsFor(r.Size()), r.ID(), n, r.Size())
	}
	var load stdtime.Duration
	time := g.time
	steps := 0
	var flops float64

	st := &state{g: g, pos: pos, vel: vel, u: u, h: h, rho: rho, prs: prs, cs: cs, acc: acc, dudt: dudt}

	// Prime density and forces.
	f := st.density(lo, hi)
	if err := exchangeScalars(r, lo, hi, rho, prs, cs, h); err != nil {
		return err
	}
	f += st.forces(lo, hi)
	if err := exchangeForces(r, lo, hi, acc, dudt); err != nil {
		return err
	}
	account(r, dev, f)
	load += slabTime(r, dev, f)
	flops += f

	for time < t-1e-15 {
		// Serial runs poll for cancellation between steps. Ranks do not:
		// one rank bailing out of a collective would wedge the rest, and
		// worker-side services always evolve under Background anyway.
		if r == nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		dt := st.timestep(lo, hi)
		if r != nil {
			m, err := mpisim.AllreduceMax(r, []float64{-dt})
			if err != nil {
				return err
			}
			dt = -m[0]
		}
		if time+dt > t {
			dt = t - time
		}

		// KDK leapfrog: half kick + drift.
		for i := lo; i < hi; i++ {
			vel[i] = vel[i].Add(acc[i].Scale(dt / 2))
			u[i] = math.Max(u[i]+dudt[i]*dt/2, 1e-12)
			pos[i] = pos[i].Add(vel[i].Scale(dt))
		}
		if err := exchangeVectors(r, lo, hi, pos, vel, u); err != nil {
			return err
		}

		// New densities and forces at the drifted state.
		f = st.density(lo, hi)
		if err := exchangeScalars(r, lo, hi, rho, prs, cs, h); err != nil {
			return err
		}
		f += st.forces(lo, hi)
		if err := exchangeForces(r, lo, hi, acc, dudt); err != nil {
			return err
		}

		// Second half kick.
		for i := lo; i < hi; i++ {
			vel[i] = vel[i].Add(acc[i].Scale(dt / 2))
			u[i] = math.Max(u[i]+dudt[i]*dt/2, 1e-12)
		}
		if err := exchangeVectors(r, lo, hi, pos, vel, u); err != nil {
			return err
		}
		account(r, dev, f)
		load += slabTime(r, dev, f)
		flops += f
		time += dt
		steps++
	}

	// Publish per the caller's ownership rules (see the doc comment).
	if publish {
		copy(g.pos, pos)
		copy(g.vel, vel)
		copy(g.u, u)
		copy(g.h, h)
		copy(g.rho, rho)
		copy(g.prs, prs)
		copy(g.cs, cs)
		g.time = time
		g.steps += steps
		g.flops += flops * flopScale(r)
		g.loadCompute += load
	}
	return nil
}

// slabTime prices one rank's slab work for the rank_load accumulator
// (mirrors account's charge; zero when running serially).
func slabTime(r mpisim.Comm, dev *vtime.Device, flops float64) stdtime.Duration {
	if r == nil || dev == nil {
		return 0
	}
	return dev.Time(flops, dev.Cores)
}

// flopScale converts one rank's counted flops into the communicator total
// (every rank does ~1/size of the work; the publishing rank reports).
func flopScale(r mpisim.Comm) float64 {
	if r == nil {
		return 1
	}
	return float64(r.Size())
}

func account(r mpisim.Comm, dev *vtime.Device, flops float64) {
	if r != nil && dev != nil {
		mpisim.ComputeFlops(r, dev, flops, dev.Cores)
	}
}

// state bundles working slices for the physics loops.
type state struct {
	g          *Gas
	pos, vel   []data.Vec3
	u, h       []float64
	rho, prs   []float64
	cs         []float64
	acc        []data.Vec3
	dudt       []float64
	cachedGrid *grid
}

// density computes rho, P, cs and updates h for indices [lo,hi).
func (st *state) density(lo, hi int) float64 {
	g := st.g
	hmax := 0.0
	for _, hh := range st.h {
		if hh > hmax {
			hmax = hh
		}
	}
	gr := buildGrid(st.pos, 2*hmax)
	st.cachedGrid = gr
	pairs := 0
	for i := lo; i < hi; i++ {
		var sum float64
		count := 0
		pi := st.pos[i]
		hh := st.h[i]
		gr.forNeighbors(pi, func(j int32) {
			rij := st.pos[j].Sub(pi).Norm()
			if rij < 2*hh {
				sum += g.mass[j] * W(rij, hh)
				count++
			}
		})
		pairs += count
		st.rho[i] = sum
		if st.rho[i] <= 0 {
			st.rho[i] = g.mass[i] * W(0, hh)
		}
		// Adaptive smoothing toward the target neighbor count.
		ratio := float64(g.NTarget) / math.Max(float64(count), 1)
		st.h[i] = clamp(hh*0.5*(1+math.Cbrt(ratio)), g.HMin, g.HMax)
		st.prs[i] = (g.Gamma - 1) * st.rho[i] * st.u[i]
		st.cs[i] = math.Sqrt(g.Gamma * st.prs[i] / st.rho[i])
	}
	return flopsPerDensityPair * float64(pairs)
}

// forces computes acc and dudt for indices [lo,hi): SPH pressure +
// viscosity, plus optional tree self-gravity.
func (st *state) forces(lo, hi int) float64 {
	g := st.g
	gr := st.cachedGrid
	pairs := 0
	for i := lo; i < hi; i++ {
		var a data.Vec3
		var du float64
		pi, vi := st.pos[i], st.vel[i]
		rhoi, prsi, csi, hsml := st.rho[i], st.prs[i], st.cs[i], st.h[i]
		gr.forNeighbors(pi, func(j int32) {
			if int(j) == i {
				return
			}
			dp := pi.Sub(st.pos[j])
			rij := dp.Norm()
			hm := 0.5 * (hsml + st.h[j])
			if rij >= 2*hm || rij == 0 {
				return
			}
			dv := vi.Sub(st.vel[j])
			dw := DW(rij, hm)
			gradW := dp.Scale(dw / rij)

			// Monaghan viscosity for approaching pairs.
			var visc float64
			vr := dv.Dot(dp)
			if vr < 0 {
				mu := hm * vr / (rij*rij + 0.01*hm*hm)
				cm := 0.5 * (csi + st.cs[j])
				rm := 0.5 * (rhoi + st.rho[j])
				visc = (-g.Alpha*cm*mu + g.Beta*mu*mu) / rm
			}
			common := prsi/(rhoi*rhoi) + st.prs[j]/(st.rho[j]*st.rho[j]) + visc
			a = a.Sub(gradW.Scale(g.mass[j] * common))
			du += 0.5 * g.mass[j] * common * dv.Dot(gradW)
			pairs++
		})
		st.acc[i] = a
		st.dudt[i] = du
	}
	flops := flopsPerForcePair * float64(pairs)

	if g.SelfGravity && len(g.mass) > 1 {
		tr := tree.Build(g.mass, st.pos)
		gacc := make([]data.Vec3, hi-lo)
		gpot := make([]float64, hi-lo)
		flops += tr.Accel(st.pos[lo:hi], g.EpsGrav, g.Theta, gacc, gpot)
		for i := lo; i < hi; i++ {
			st.acc[i] = st.acc[i].Add(gacc[i-lo])
		}
	}
	return flops
}

// timestep returns the local CFL-limited step over [lo,hi).
func (st *state) timestep(lo, hi int) float64 {
	g := st.g
	dt := g.DtMax
	for i := lo; i < hi; i++ {
		denom := st.cs[i] + st.vel[i].Norm() + 1e-12
		if d := g.CFL * st.h[i] / denom; d < dt {
			dt = d
		}
		if an := st.acc[i].Norm(); an > 0 {
			if d := 0.3 * math.Sqrt(st.h[i]/an); d < dt {
				dt = d
			}
		}
	}
	if dt <= 0 || math.IsNaN(dt) {
		dt = 1e-8
	}
	return dt
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Exchange helpers: allgather the rank's slab so every rank holds the full
// updated arrays. nil rank = serial no-op.

func exchangeScalars(r mpisim.Comm, lo, hi int, arrays ...[]float64) error {
	if r == nil {
		return nil
	}
	for _, a := range arrays {
		full, err := mpisim.AllgatherFloats(r, a[lo:hi])
		if err != nil {
			return err
		}
		copy(a, full)
	}
	return nil
}

func exchangeVectors(r mpisim.Comm, lo, hi int, pos, vel []data.Vec3, u []float64) error {
	if r == nil {
		return nil
	}
	buf := make([]float64, 0, (hi-lo)*7)
	for i := lo; i < hi; i++ {
		buf = append(buf, pos[i][0], pos[i][1], pos[i][2], vel[i][0], vel[i][1], vel[i][2], u[i])
	}
	full, err := mpisim.AllgatherFloats(r, buf)
	if err != nil {
		return err
	}
	for i := 0; i*7+6 < len(full); i++ {
		pos[i] = data.Vec3{full[i*7], full[i*7+1], full[i*7+2]}
		vel[i] = data.Vec3{full[i*7+3], full[i*7+4], full[i*7+5]}
		u[i] = full[i*7+6]
	}
	return nil
}

func exchangeForces(r mpisim.Comm, lo, hi int, acc []data.Vec3, dudt []float64) error {
	if r == nil {
		return nil
	}
	buf := make([]float64, 0, (hi-lo)*4)
	for i := lo; i < hi; i++ {
		buf = append(buf, acc[i][0], acc[i][1], acc[i][2], dudt[i])
	}
	full, err := mpisim.AllgatherFloats(r, buf)
	if err != nil {
		return err
	}
	for i := 0; i*4+3 < len(full); i++ {
		acc[i] = data.Vec3{full[i*4], full[i*4+1], full[i*4+2]}
		dudt[i] = full[i*4+3]
	}
	return nil
}
