package sph

import (
	"context"
	"fmt"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/core/kernel"
	"jungle/internal/deploy"
	"jungle/internal/mpisim"
	"jungle/internal/vtime"
)

// KindHydro is the worker kind this package registers: the Gadget
// equivalent. Multi-node workers span an mpisim world over the job's
// hosts (Fig. 5's "Worker 2 uses MPI").
const KindHydro = "hydro"

// hydroEfficiency is this kernel family's sustained-efficiency
// calibration knob (SPH + tree); fitted jointly with the other families
// against §6.2's scenario numbers — see DESIGN.md.
const hydroEfficiency = 5.313e-4

func init() {
	kernel.Register(KindHydro, newHydroService)
}

// hydroService hosts the Gadget worker. It parallelizes two ways, which
// are mutually exclusive: a multi-node job opens an mpisim World over its
// hosts (goroutine ranks inside one worker), and a gang deployment
// (kernel.Shardable) makes this whole service one process rank of a
// domain-decomposed kernel exchanging slabs over the gang's peer links.
type hydroService struct {
	res   *deploy.Resource
	gas   *Gas
	world *mpisim.World
	dev   *vtime.Device
	clock *vtime.Clock
	gi    *kernel.GangInfo
	gang  *mpisim.Gang
}

func newHydroService(cfg kernel.Config) (kernel.Service, error) {
	dev, err := kernel.PickDevice(cfg.Res, false)
	if err != nil {
		return nil, err
	}
	s := &hydroService{res: cfg.Res, gas: New(), dev: kernel.Derate(dev, hydroEfficiency),
		clock: vtime.NewClock(), gi: cfg.Gang}
	if len(cfg.Hosts) > 0 {
		s.dev = kernel.NodeDerate(s.dev, cfg.Res, cfg.Hosts[0])
	}
	if cfg.Gang != nil && len(cfg.Hosts) > 1 {
		return nil, fmt.Errorf("sph: gang ranks are single-node workers (rank %d got %d hosts); shard across workers or span nodes, not both", cfg.Gang.Rank, len(cfg.Hosts))
	}
	if len(cfg.Hosts) > 1 && cfg.Net != nil {
		w, err := mpisim.NewWorld(cfg.Net, cfg.Hosts)
		if err != nil {
			return nil, fmt.Errorf("sph: hydro MPI world: %w", err)
		}
		s.world = w
	}
	return s, nil
}

// SetGang implements kernel.Shardable: the worker host installs the wired
// communicator, which binds this service's clock.
func (s *hydroService) SetGang(g *mpisim.Gang) error {
	if s.gi == nil {
		return fmt.Errorf("sph: SetGang on a solo worker")
	}
	if g.ID() != s.gi.Rank || g.Size() != s.gi.Size {
		return fmt.Errorf("sph: gang %d/%d does not match configured rank %d/%d",
			g.ID(), g.Size(), s.gi.Rank, s.gi.Size)
	}
	g.Bind(s.clock)
	s.gang = g
	return nil
}

// Reshard implements kernel.Reshardable: install new slab boundaries on
// the gas. The SPH exchanges allgather variable-length slabs in rank
// order, so only the local row range changes; results are unaffected.
func (s *hydroService) Reshard(cuts []int) error {
	if s.gi == nil {
		return fmt.Errorf("sph: reshard on a solo worker")
	}
	return s.gas.SetCuts(cuts, s.gi.Size)
}

func (s *hydroService) Close() {
	if s.world != nil {
		s.world.Close()
	}
	if s.gang != nil {
		s.gang.Close()
	}
}

func (s *hydroService) Dispatch(method string, args []byte, at time.Duration) ([]byte, time.Duration, error) {
	s.clock.AdvanceTo(at)
	switch method {
	case "setup":
		var a kernel.SetupHydroArgs
		if err := kernel.Decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		s.gas.SelfGravity = a.SelfGravity
		if a.EpsGrav > 0 {
			s.gas.EpsGrav = a.EpsGrav
		}
		if a.NTarget > 0 {
			s.gas.NTarget = a.NTarget
		}
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case "set_particles":
		var pl kernel.ParticlesPayload
		if err := kernel.Decode(args, &pl); err != nil {
			return nil, s.clock.Now(), err
		}
		if err := s.gas.SetParticles(kernel.PayloadToParticles(pl)); err != nil {
			return nil, s.clock.Now(), err
		}
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case "evolve":
		var a kernel.EvolveArgs
		if err := kernel.Decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		switch {
		case s.gang != nil:
			// Sharded: compute and slab exchange are accounted on this
			// clock (bound by SetGang) as they happen; the published flop
			// total is informational only, so discard it rather than
			// double-charging the clock.
			if err := s.gas.EvolveToComm(context.Background(), a.T, s.gang, s.dev); err != nil {
				return nil, s.clock.Now(), err
			}
			s.gas.ResetFlops()
		case s.world != nil:
			s.world.SyncTo(s.clock.Now())
			if err := s.gas.EvolveToParallel(context.Background(), a.T, s.world, s.dev); err != nil {
				return nil, s.clock.Now(), err
			}
			s.clock.AdvanceTo(s.world.MaxTime())
		default:
			if err := s.gas.EvolveTo(context.Background(), a.T); err != nil {
				return nil, s.clock.Now(), err
			}
			s.clock.Advance(s.dev.Time(s.gas.ResetFlops(), 0))
		}
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case "kick":
		var a kernel.KickArgs
		if err := kernel.Decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		if err := s.gas.Kick(context.Background(), a.DV); err != nil {
			return nil, s.clock.Now(), err
		}
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case "get_positions":
		return kernel.Encode(kernel.VecResult{V: append([]data.Vec3(nil), s.gas.Positions()...)}), s.clock.Now(), nil
	case "get_masses":
		return kernel.Encode(kernel.FloatsResult{X: append([]float64(nil), s.gas.Masses()...)}), s.clock.Now(), nil
	case "get_state":
		q, err := kernel.UnmarshalStateRequest(args)
		if err != nil {
			return nil, s.clock.Now(), err
		}
		st := kernel.NewState(s.gas.N())
		for _, a := range q.Attrs {
			switch a {
			case data.AttrMass:
				st.AddFloat(a, s.gas.Masses())
			case data.AttrPos:
				st.AddVec(a, s.gas.Positions())
			case data.AttrVel:
				st.AddVec(a, s.gas.Velocities())
			case data.AttrInternalEnergy:
				st.AddFloat(a, s.gas.InternalEnergies())
			case data.AttrSmoothingLen:
				st.AddFloat(a, s.gas.SmoothingLens())
			case data.AttrDensity:
				st.AddFloat(a, s.gas.Densities())
			default:
				return nil, s.clock.Now(), fmt.Errorf("sph: get_state: unknown attribute %q", a)
			}
		}
		out, err := kernel.MarshalState(st)
		return out, s.clock.Now(), err
	case "set_state":
		st, err := kernel.UnmarshalState(args)
		if err != nil {
			return nil, s.clock.Now(), err
		}
		if err := s.applyState(st); err != nil {
			return nil, s.clock.Now(), err
		}
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case "inject_energy":
		var a kernel.InjectArgs
		if err := kernel.Decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		s.gas.InjectEnergy(a.Center, a.Radius, a.E)
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case "energies":
		k, th, p := s.gas.Energy()
		s.clock.Advance(s.dev.Time(s.gas.ResetFlops(), 0))
		return kernel.Encode(kernel.EnergiesResult{Kinetic: k, Thermal: th, Potential: p}), s.clock.Now(), nil
	case "stats":
		return kernel.Encode(kernel.StatsResult{N: s.gas.N(), Time: s.gas.Time(), Steps: s.gas.Steps()}), s.clock.Now(), nil
	case kernel.MethodReshard:
		var a kernel.ReshardArgs
		if err := kernel.Decode(args, &a); err != nil {
			return nil, s.clock.Now(), err
		}
		if err := s.Reshard(a.Cuts); err != nil {
			return nil, s.clock.Now(), err
		}
		return kernel.Encode(kernel.Empty{}), s.clock.Now(), nil
	case kernel.MethodRankLoad:
		if s.gi == nil {
			return nil, s.clock.Now(), fmt.Errorf("sph: rank_load needs a gang rank")
		}
		rows, compute := s.gas.TakeLoad(s.gi.Rank, s.gi.Size)
		return kernel.Encode(kernel.RankLoadResult{
			Rank: s.gi.Rank, Rows: rows, ComputeNs: compute.Nanoseconds(),
		}), s.clock.Now(), nil
	case kernel.MethodCheckpoint, kernel.MethodRestore:
		out, err := kernel.ServeCheckpoint(s, method, args)
		return out, s.clock.Now(), err
	default:
		return nil, s.clock.Now(), fmt.Errorf("%w: hydro.%s", kernel.ErrNoSuchMethod, method)
	}
}

// Snapshot implements kernel.Checkpointable: the full SPH phase-space
// state (mass, position, velocity, internal energy, smoothing length)
// plus the integrator clock. Density, pressure and sound speed are
// derived each step and are not checkpointed.
func (s *hydroService) Snapshot() (*kernel.Snapshot, error) {
	if s.gas.N() == 0 {
		return &kernel.Snapshot{Kind: KindHydro, VTime: s.clock.Now()}, nil
	}
	st := kernel.NewState(s.gas.N())
	st.AddFloat(data.AttrMass, s.gas.Masses())
	st.AddVec(data.AttrPos, s.gas.Positions())
	st.AddVec(data.AttrVel, s.gas.Velocities())
	st.AddFloat(data.AttrInternalEnergy, s.gas.InternalEnergies())
	st.AddFloat(data.AttrSmoothingLen, s.gas.SmoothingLens())
	return &kernel.Snapshot{
		Kind: KindHydro, Model: s.gas.Time(), Steps: s.gas.Steps(),
		VTime: s.clock.Now(), State: st,
	}, nil
}

// Restore implements kernel.Checkpointable.
func (s *hydroService) Restore(snap *kernel.Snapshot) error {
	if err := snap.CheckKind(KindHydro); err != nil {
		return err
	}
	if snap.State == nil {
		return nil // empty system checkpointed before particles were set
	}
	st := snap.State
	p := data.NewParticles(st.N)
	if err := kernel.ScatterState(p, st); err != nil {
		return err
	}
	if err := s.gas.SetParticles(p); err != nil {
		return err
	}
	s.gas.RestoreClock(snap.Model, snap.Steps)
	return nil
}

func (s *hydroService) applyState(st *kernel.StatePayload) error {
	for i, a := range st.FloatAttrs {
		var err error
		switch a {
		case data.AttrMass:
			err = s.gas.SetMasses(st.FloatCols[i])
		case data.AttrInternalEnergy:
			err = s.gas.SetInternalEnergies(st.FloatCols[i])
		default:
			err = fmt.Errorf("sph: set_state: unknown attribute %q", a)
		}
		if err != nil {
			return err
		}
	}
	for i, a := range st.VecAttrs {
		var err error
		switch a {
		case data.AttrPos:
			err = s.gas.SetPositions(st.VecCols[i])
		case data.AttrVel:
			err = s.gas.SetVelocities(st.VecCols[i])
		default:
			err = fmt.Errorf("sph: set_state: unknown attribute %q", a)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
