package sph

import (
	"fmt"

	"jungle/internal/amuse/data"
)

// Columnar accessors and bulk setters: the worker-side half of the
// batched state protocol for the SPH model.

// InternalEnergies exposes the specific internal energy column.
func (g *Gas) InternalEnergies() []float64 { return g.u }

// SmoothingLens exposes the smoothing length column.
func (g *Gas) SmoothingLens() []float64 { return g.h }

// Densities exposes the density column (valid after the first step).
func (g *Gas) Densities() []float64 { return g.rho }

// SetMasses replaces all particle masses.
func (g *Gas) SetMasses(m []float64) error {
	if len(m) != len(g.mass) {
		return fmt.Errorf("sph: mass column length %d != N %d", len(m), len(g.mass))
	}
	copy(g.mass, m)
	return nil
}

// SetPositions replaces all particle positions.
func (g *Gas) SetPositions(p []data.Vec3) error {
	if len(p) != len(g.pos) {
		return fmt.Errorf("sph: position column length %d != N %d", len(p), len(g.pos))
	}
	copy(g.pos, p)
	return nil
}

// SetVelocities replaces all particle velocities.
func (g *Gas) SetVelocities(v []data.Vec3) error {
	if len(v) != len(g.vel) {
		return fmt.Errorf("sph: velocity column length %d != N %d", len(v), len(g.vel))
	}
	copy(g.vel, v)
	return nil
}

// SetInternalEnergies replaces the specific internal energy column.
func (g *Gas) SetInternalEnergies(u []float64) error {
	if len(u) != len(g.u) {
		return fmt.Errorf("sph: u column length %d != N %d", len(u), len(g.u))
	}
	for i, x := range u {
		if x <= 0 {
			return fmt.Errorf("sph: particle %d has non-positive internal energy", i)
		}
	}
	copy(g.u, u)
	return nil
}
