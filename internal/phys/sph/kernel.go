// Package sph reimplements the paper's gas-dynamics model: a Gadget-style
// smoothed-particle-hydrodynamics code (Springel 2005) with cubic-spline
// kernels, Monaghan artificial viscosity, adaptive smoothing lengths and
// optional tree self-gravity. It runs serially, data-parallel over an
// mpisim world (the paper runs Gadget on 8 nodes with C/MPI — goroutine
// ranks inside one multi-node worker), or as one rank of a worker gang
// (EvolveToComm / kernel.Shardable: the same slab decomposition, but the
// ranks are separate worker processes exchanging over their peer links).
// In all parallel modes slab decomposition, allgather exchanges and
// per-rank virtual-time accounting model the real code's behaviour, and
// every mode produces the serial results bit for bit.
package sph

import "math"

// W is the cubic spline kernel with compact support 2h (Monaghan &
// Lattanzio 1985), normalized in 3D.
func W(r, h float64) float64 {
	if h <= 0 {
		return 0
	}
	q := r / h
	sigma := 1 / (math.Pi * h * h * h)
	switch {
	case q < 1:
		return sigma * (1 - 1.5*q*q + 0.75*q*q*q)
	case q < 2:
		d := 2 - q
		return sigma * 0.25 * d * d * d
	default:
		return 0
	}
}

// DW is the kernel derivative dW/dr.
func DW(r, h float64) float64 {
	if h <= 0 {
		return 0
	}
	q := r / h
	sigma := 1 / (math.Pi * h * h * h * h)
	switch {
	case q < 1:
		return sigma * (-3*q + 2.25*q*q)
	case q < 2:
		d := 2 - q
		return sigma * (-0.75 * d * d)
	default:
		return 0
	}
}
