package sph

import (
	"math"

	"jungle/internal/amuse/data"
)

// grid is a uniform cell list for fixed-radius neighbor queries. Cell size
// equals the search radius, so neighbors of a point lie in its 27
// surrounding cells.
type grid struct {
	cell  float64
	inv   float64
	cells map[[3]int32][]int32
}

// buildGrid indexes positions with the given cell size.
func buildGrid(pos []data.Vec3, cell float64) *grid {
	if cell <= 0 || math.IsNaN(cell) {
		cell = 1
	}
	g := &grid{cell: cell, inv: 1 / cell, cells: make(map[[3]int32][]int32, len(pos)/4+1)}
	for i, p := range pos {
		k := g.key(p)
		g.cells[k] = append(g.cells[k], int32(i))
	}
	return g
}

func (g *grid) key(p data.Vec3) [3]int32 {
	return [3]int32{
		int32(math.Floor(p[0] * g.inv)),
		int32(math.Floor(p[1] * g.inv)),
		int32(math.Floor(p[2] * g.inv)),
	}
}

// forNeighbors calls fn for every candidate index j whose cell is within
// one cell of p's cell, in deterministic (cell-ordered, then insertion)
// order. Callers filter by actual distance.
func (g *grid) forNeighbors(p data.Vec3, fn func(j int32)) {
	c := g.key(p)
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			for dz := int32(-1); dz <= 1; dz++ {
				k := [3]int32{c[0] + dx, c[1] + dy, c[2] + dz}
				for _, j := range g.cells[k] {
					fn(j)
				}
			}
		}
	}
}
