package sph

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/amuse/ic"
	"jungle/internal/mpisim"
	"jungle/internal/vnet"
	"jungle/internal/vtime"
)

func gasSphere(t *testing.T, n int) *data.Particles {
	t.Helper()
	_, gas, err := ic.EmbeddedCluster(ic.ClusterSpec{Stars: 1, Gas: n, GasFrac: 0.9, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	return gas
}

func TestKernelNormalization(t *testing.T) {
	// ∫ W dV = 1: integrate on a radial grid.
	h := 0.7
	var sum float64
	dr := h / 400
	for r := dr / 2; r < 2*h; r += dr {
		sum += W(r, h) * 4 * math.Pi * r * r * dr
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("kernel integral = %v", sum)
	}
}

func TestKernelProperties(t *testing.T) {
	h := 0.5
	if W(0, h) <= 0 {
		t.Fatal("W(0) not positive")
	}
	if W(2*h, h) != 0 || W(3*h, h) != 0 {
		t.Fatal("kernel support exceeds 2h")
	}
	if DW(0.5*h, h) >= 0 {
		t.Fatal("kernel not decreasing")
	}
	if DW(2.5*h, h) != 0 {
		t.Fatal("derivative outside support")
	}
	if W(0.1, 0) != 0 || DW(0.1, 0) != 0 {
		t.Fatal("zero h not handled")
	}
}

func TestGridFindsAllNeighbors(t *testing.T) {
	p := ic.Plummer(300, 9)
	radius := 0.3
	g := buildGrid(p.Pos, radius)
	for i := 0; i < 20; i++ {
		found := map[int32]bool{}
		g.forNeighbors(p.Pos[i], func(j int32) { found[j] = true })
		for j := range p.Pos {
			if p.Pos[j].Sub(p.Pos[i]).Norm() < radius && !found[int32(j)] {
				t.Fatalf("grid missed neighbor %d of %d", j, i)
			}
		}
	}
}

func TestDensityUniformLattice(t *testing.T) {
	// A unit-density cubic lattice: SPH density near the center must be
	// ~1 within kernel bias.
	side := 10
	n := side * side * side
	p := data.NewParticles(n)
	dx := 1.0
	idx := 0
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			for z := 0; z < side; z++ {
				p.Mass[idx] = dx * dx * dx // unit density
				p.Pos[idx] = data.Vec3{float64(x) * dx, float64(y) * dx, float64(z) * dx}
				p.InternalEnergy[idx] = 1
				p.SmoothingLen[idx] = 1.3 * dx
				idx++
			}
		}
	}
	g := New()
	g.SelfGravity = false
	if err := g.SetParticles(p); err != nil {
		t.Fatal(err)
	}
	st := &state{g: g, pos: g.pos, vel: g.vel, u: g.u,
		h: g.h, rho: g.rho, prs: g.prs, cs: g.cs,
		acc: make([]data.Vec3, n), dudt: make([]float64, n)}
	st.density(0, n)
	// Center particle index: (5,5,5).
	ci := 5*side*side + 5*side + 5
	if math.Abs(g.rho[ci]-1) > 0.1 {
		t.Fatalf("lattice center density = %v, want ~1", g.rho[ci])
	}
}

func TestSetParticlesValidation(t *testing.T) {
	p := data.NewParticles(2)
	p.Mass[0], p.Mass[1] = 1, 1
	g := New()
	if err := g.SetParticles(p); err == nil {
		t.Fatal("accepted zero internal energy")
	}
	p.InternalEnergy[0], p.InternalEnergy[1] = 1, 1
	if err := g.SetParticles(p); err == nil {
		t.Fatal("accepted zero smoothing length")
	}
	p.SmoothingLen[0], p.SmoothingLen[1] = 0.1, 0.1
	if err := g.SetParticles(p); err != nil {
		t.Fatal(err)
	}
}

func TestEvolveConservesEnergyShortTerm(t *testing.T) {
	gas := gasSphere(t, 400)
	g := New()
	if err := g.SetParticles(gas); err != nil {
		t.Fatal(err)
	}
	k0, th0, p0 := g.Energy()
	e0 := k0 + th0 + p0
	if err := g.EvolveTo(context.Background(), 0.05); err != nil {
		t.Fatal(err)
	}
	k1, th1, p1 := g.Energy()
	e1 := k1 + th1 + p1
	if rel := math.Abs((e1 - e0) / e0); rel > 0.05 {
		t.Fatalf("energy drift %v over 0.05 time units", rel)
	}
	if g.Steps() == 0 {
		t.Fatal("no steps taken")
	}
	if g.Flops() <= 0 {
		t.Fatal("no flops accounted")
	}
}

func TestPressureExpandsHotSphere(t *testing.T) {
	// Hot gas without gravity must expand: mean radius grows.
	gas := gasSphere(t, 300)
	for i := range gas.InternalEnergy {
		gas.InternalEnergy[i] = 5 // very hot
	}
	g := New()
	g.SelfGravity = false
	if err := g.SetParticles(gas); err != nil {
		t.Fatal(err)
	}
	r0 := meanRadius(g.pos)
	if err := g.EvolveTo(context.Background(), 0.3); err != nil {
		t.Fatal(err)
	}
	r1 := meanRadius(g.pos)
	if r1 <= r0*1.05 {
		t.Fatalf("hot sphere did not expand: %v -> %v", r0, r1)
	}
}

func meanRadius(pos []data.Vec3) float64 {
	var com data.Vec3
	for _, p := range pos {
		com = com.Add(p)
	}
	com = com.Scale(1 / float64(len(pos)))
	var sum float64
	for _, p := range pos {
		sum += p.Sub(com).Norm()
	}
	return sum / float64(len(pos))
}

func TestKickAppliesToAll(t *testing.T) {
	gas := gasSphere(t, 50)
	g := New()
	if err := g.SetParticles(gas); err != nil {
		t.Fatal(err)
	}
	dv := make([]data.Vec3, g.N())
	for i := range dv {
		dv[i] = data.Vec3{0.5, 0, 0}
	}
	if err := g.Kick(context.Background(), dv); err != nil {
		t.Fatal(err)
	}
	if g.Velocities()[7][0] != gas.Vel[7][0]+0.5 {
		t.Fatal("kick not applied")
	}
	if err := g.Kick(context.Background(), dv[:1]); err == nil {
		t.Fatal("short kick accepted")
	}
}

func TestEmptyGas(t *testing.T) {
	g := New()
	if err := g.EvolveTo(context.Background(), 1); err != ErrNoGas {
		t.Fatalf("err = %v", err)
	}
}

// TestParallelMatchesSerial is the key mpisim integration property: the
// slab-parallel run over 4 virtual nodes must produce exactly the serial
// result (the allgather keeps full-array state identical across ranks).
func TestParallelMatchesSerial(t *testing.T) {
	gas := gasSphere(t, 240)

	serial := New()
	if err := serial.SetParticles(gas); err != nil {
		t.Fatal(err)
	}
	if err := serial.EvolveTo(context.Background(), 0.02); err != nil {
		t.Fatal(err)
	}

	net := vnet.New()
	c, err := net.AddCluster(vnet.ClusterSpec{Name: "das4", Site: "vu", Nodes: 4,
		FrontendPolicy: vnet.Open, NodePolicy: vnet.Open})
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpisim.NewWorld(net, c.NodeName)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	dev := &vtime.Device{Name: "node", Kind: vtime.CPU, Gflops: 5, Cores: 8}

	par := New()
	if err := par.SetParticles(gas); err != nil {
		t.Fatal(err)
	}
	if err := par.EvolveToParallel(context.Background(), 0.02, w, dev); err != nil {
		t.Fatal(err)
	}

	if serial.N() != par.N() {
		t.Fatal("size mismatch")
	}
	for i := 0; i < serial.N(); i++ {
		for d := 0; d < 3; d++ {
			if math.Float64bits(serial.pos[i][d]) != math.Float64bits(par.pos[i][d]) {
				t.Fatalf("particle %d dim %d: serial %v vs parallel %v",
					i, d, serial.pos[i][d], par.pos[i][d])
			}
		}
		if math.Float64bits(serial.u[i]) != math.Float64bits(par.u[i]) {
			t.Fatalf("particle %d internal energy differs", i)
		}
	}
	// The parallel run must have advanced every rank's virtual clock.
	if w.MaxTime() == 0 {
		t.Fatal("no virtual time accounted")
	}
}

func TestParallelStepsAccounted(t *testing.T) {
	gas := gasSphere(t, 120)
	net := vnet.New()
	c, err := net.AddCluster(vnet.ClusterSpec{Name: "x", Site: "s", Nodes: 2,
		FrontendPolicy: vnet.Open, NodePolicy: vnet.Open})
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpisim.NewWorld(net, c.NodeName)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	g := New()
	if err := g.SetParticles(gas); err != nil {
		t.Fatal(err)
	}
	dev := &vtime.Device{Name: "node", Kind: vtime.CPU, Gflops: 5, Cores: 8}
	if err := g.EvolveToParallel(context.Background(), 0.01, w, dev); err != nil {
		t.Fatal(err)
	}
	if g.Time() < 0.01-1e-12 {
		t.Fatalf("time = %v", g.Time())
	}
	if g.Steps() == 0 || g.Flops() == 0 {
		t.Fatal("steps/flops not accounted")
	}
}

// TestGangMatchesSerial extends the parallel-equals-serial property to
// gangs: K worker-process ranks, each owning a replicated Gas and
// exchanging slabs over gang links, produce exactly the serial result.
func TestGangMatchesSerial(t *testing.T) {
	gas := gasSphere(t, 240)

	serial := New()
	if err := serial.SetParticles(gas); err != nil {
		t.Fatal(err)
	}
	if err := serial.EvolveTo(context.Background(), 0.02); err != nil {
		t.Fatal(err)
	}

	const size = 3
	gangs := mpisim.LocalGangs(size, 20*time.Microsecond)
	dev := &vtime.Device{Name: "node", Kind: vtime.CPU, Gflops: 5, Cores: 8}
	systems := make([]*Gas, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for i := range systems {
		systems[i] = New()
		if err := systems[i].SetParticles(gas); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = systems[i].EvolveToComm(context.Background(), 0.02, gangs[i], dev)
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		t.Fatal(err)
	}
	for rank, par := range systems {
		for i := 0; i < serial.N(); i++ {
			for d := 0; d < 3; d++ {
				if math.Float64bits(serial.pos[i][d]) != math.Float64bits(par.pos[i][d]) {
					t.Fatalf("rank %d particle %d dim %d: serial %v vs gang %v",
						rank, i, d, serial.pos[i][d], par.pos[i][d])
				}
			}
			if math.Float64bits(serial.u[i]) != math.Float64bits(par.u[i]) {
				t.Fatalf("rank %d particle %d internal energy differs", rank, i)
			}
		}
		if gangs[rank].Clock().Now() == 0 {
			t.Fatalf("rank %d: no virtual time accounted", rank)
		}
	}
}
