package gat

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jungle/internal/trace"
	"jungle/internal/vnet"
)

// testRig builds a network with a desktop submit host, an SGE cluster and
// an SSH-reachable standalone machine.
type testRig struct {
	net     *vnet.Network
	fs      *FS
	catalog *Catalog
	broker  *Broker
	cluster *vnet.Cluster
}

func newRig(t *testing.T, nodes int) *testRig {
	t.Helper()
	n := vnet.New()
	if _, err := n.AddHost("desktop", "vu", vnet.Open); err != nil {
		t.Fatal(err)
	}
	c, err := n.AddCluster(vnet.ClusterSpec{
		Name: "das4", Site: "uva", Nodes: nodes,
		FrontendPolicy: vnet.SSHOnly, NodePolicy: vnet.OutboundOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddHost("lonely", "leiden", vnet.SSHOnly); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink("desktop", c.Frontend, time.Millisecond, 1.25e8); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink("desktop", "lonely", 2*time.Millisecond, 1.25e8); err != nil {
		t.Fatal(err)
	}
	fs := NewFS(n)
	cat := NewCatalog()
	b := NewBroker(n, fs, cat, "desktop")
	b.RegisterCluster(c.Frontend, c.NodeName)
	return &testRig{net: n, fs: fs, catalog: cat, broker: b, cluster: c}
}

func TestFSWriteReadCopy(t *testing.T) {
	r := newRig(t, 2)
	r.fs.Write("desktop", "/input.dat", []byte("hello"))
	if !r.fs.Exists("desktop", "/input.dat") {
		t.Fatal("file missing")
	}
	cost, err := r.fs.Copy("desktop", "/input.dat", r.cluster.Node(0), "/tmp/input.dat")
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("cross-host copy cost zero virtual time")
	}
	got, err := r.fs.Read(r.cluster.Node(0), "/tmp/input.dat")
	if err != nil || string(got) != "hello" {
		t.Fatalf("read: %q, %v", got, err)
	}
	if _, err := r.fs.Read("desktop", "/nope"); !errors.Is(err, ErrNoFile) {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.fs.Copy("desktop", "/nope", "lonely", "/x"); err == nil {
		t.Fatal("copied missing file")
	}
	if l := r.fs.List(r.cluster.Node(0)); len(l) != 1 || l[0] != "/tmp/input.dat" {
		t.Fatalf("list = %v", l)
	}
}

func TestFileStagingRecordsTraffic(t *testing.T) {
	r := newRig(t, 2)
	rec := trace.New()
	r.net.SetRecorder(rec)
	r.fs.Write("desktop", "/a", make([]byte, 5000))
	if _, err := r.fs.Copy("desktop", "/a", r.cluster.Node(0), "/a"); err != nil {
		t.Fatal(err)
	}
	if b := rec.Bytes("desktop", r.cluster.Node(0), "file"); b != 5000 {
		t.Fatalf("file traffic = %d", b)
	}
}

func TestLocalJob(t *testing.T) {
	r := newRig(t, 2)
	var ran atomic.Bool
	r.catalog.Register("hello", func(ctx *Context) error {
		if len(ctx.Hosts) != 1 || ctx.Hosts[0] != "desktop" {
			t.Errorf("hosts = %v", ctx.Hosts)
		}
		ran.Store(true)
		return nil
	})
	j, err := r.broker.Submit(JobDescription{Executable: "hello"}, "local://")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() || j.State() != Stopped {
		t.Fatalf("state = %v", j.State())
	}
}

func TestUnknownExecutable(t *testing.T) {
	r := newRig(t, 1)
	if _, err := r.broker.Submit(JobDescription{Executable: "ghost"}, "local://"); !errors.Is(err, ErrUnknownExecutable) {
		t.Fatalf("err = %v", err)
	}
}

func TestSSHJobOnStandalone(t *testing.T) {
	r := newRig(t, 1)
	r.catalog.Register("probe", func(ctx *Context) error {
		if ctx.Hosts[0] != "lonely" {
			t.Errorf("host = %v", ctx.Hosts)
		}
		return nil
	})
	j, err := r.broker.Submit(JobDescription{Executable: "probe"}, "ssh://lonely")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestSSHRejectsMultiNode(t *testing.T) {
	r := newRig(t, 1)
	r.catalog.Register("x", func(*Context) error { return nil })
	if _, err := r.broker.Submit(JobDescription{Executable: "x", Nodes: 4}, "ssh://lonely"); err == nil {
		t.Fatal("ssh accepted multi-node job")
	}
}

func TestSGEMultiNodeJob(t *testing.T) {
	r := newRig(t, 8)
	r.catalog.Register("mpi", func(ctx *Context) error {
		if len(ctx.Hosts) != 4 {
			t.Errorf("allocated %d nodes", len(ctx.Hosts))
		}
		return nil
	})
	j, err := r.broker.Submit(JobDescription{Executable: "mpi", Nodes: 4},
		"sge://"+r.cluster.Frontend)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(j.Hosts()) != 4 {
		t.Fatalf("job hosts = %v", j.Hosts())
	}
	free, err := r.broker.FreeNodes(r.cluster.Frontend)
	if err != nil {
		t.Fatal(err)
	}
	if free != 8 {
		t.Fatalf("nodes not released: %d free", free)
	}
}

func TestQueueingFIFO(t *testing.T) {
	r := newRig(t, 2)
	release := make(chan struct{})
	var order []int
	var mu sync.Mutex
	mark := func(id int) {
		mu.Lock()
		order = append(order, id)
		mu.Unlock()
	}
	r.catalog.Register("hold", func(ctx *Context) error {
		mark(1)
		<-release
		return nil
	})
	r.catalog.Register("next", func(ctx *Context) error {
		mark(2)
		return nil
	})
	j1, err := r.broker.Submit(JobDescription{Executable: "hold", Nodes: 2},
		"sge://"+r.cluster.Frontend)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until j1 actually runs.
	deadline := time.Now().Add(2 * time.Second)
	for j1.State() != Running && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	j2, err := r.broker.Submit(JobDescription{Executable: "next", Nodes: 1},
		"sge://"+r.cluster.Frontend)
	if err != nil {
		t.Fatal(err)
	}
	// j2 must stay queued while j1 holds both nodes.
	time.Sleep(20 * time.Millisecond)
	if j2.State() != Scheduled {
		t.Fatalf("queued job state = %v", j2.State())
	}
	close(release)
	if err := j1.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := j2.Wait(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestTooManyNodes(t *testing.T) {
	r := newRig(t, 2)
	r.catalog.Register("x", func(*Context) error { return nil })
	if _, err := r.broker.Submit(JobDescription{Executable: "x", Nodes: 5},
		"sge://"+r.cluster.Frontend); !errors.Is(err, ErrTooManyNodes) {
		t.Fatalf("err = %v", err)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	r := newRig(t, 1)
	release := make(chan struct{})
	r.catalog.Register("hold", func(ctx *Context) error { <-release; return nil })
	r.catalog.Register("x", func(*Context) error { return nil })
	j1, _ := r.broker.Submit(JobDescription{Executable: "hold"}, "sge://"+r.cluster.Frontend)
	deadline := time.Now().Add(2 * time.Second)
	for j1.State() != Running && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	j2, err := r.broker.Submit(JobDescription{Executable: "x"}, "sge://"+r.cluster.Frontend)
	if err != nil {
		t.Fatal(err)
	}
	j2.Cancel()
	if err := j2.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
	close(release)
	if err := j1.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestCancelRunningJob(t *testing.T) {
	r := newRig(t, 1)
	started := make(chan struct{})
	r.catalog.Register("loop", func(ctx *Context) error {
		close(started)
		<-ctx.Cancel
		return errors.New("interrupted") // error is superseded by Canceled
	})
	j, err := r.broker.Submit(JobDescription{Executable: "loop"}, "local://")
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if j.State() != Running {
		t.Fatalf("state = %v", j.State())
	}
	j.Cancel()
	if err := j.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
	if j.State() != Canceled {
		t.Fatalf("state = %v", j.State())
	}
}

func TestAutoAdapterSelection(t *testing.T) {
	// Bare host URI: the broker must find a working adapter. For the SGE
	// frontend the local adapter fails (wrong host), ssh works.
	r := newRig(t, 2)
	r.catalog.Register("x", func(ctx *Context) error { return nil })
	j, err := r.broker.Submit(JobDescription{Executable: "x"}, r.cluster.Frontend)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	if j.Adapter != "ssh" {
		t.Fatalf("adapter = %q, want ssh", j.Adapter)
	}
	// For the submit host itself, local wins.
	j2, err := r.broker.Submit(JobDescription{Executable: "x"}, "desktop")
	if err != nil {
		t.Fatal(err)
	}
	if j2.Adapter != "local" {
		t.Fatalf("adapter = %q, want local", j2.Adapter)
	}
	j2.Wait()
}

func TestAutoSelectionFailsCleanly(t *testing.T) {
	r := newRig(t, 1)
	r.catalog.Register("x", func(*Context) error { return nil })
	if _, err := r.broker.Submit(JobDescription{Executable: "x"}, "no-such-host"); !errors.Is(err, ErrNoAdapter) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownScheme(t *testing.T) {
	r := newRig(t, 1)
	r.catalog.Register("x", func(*Context) error { return nil })
	if _, err := r.broker.Submit(JobDescription{Executable: "x"}, "globus://x"); !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("err = %v", err)
	}
}

func TestJobStateListeners(t *testing.T) {
	r := newRig(t, 1)
	r.catalog.Register("x", func(*Context) error { return nil })
	var mu sync.Mutex
	var states []JobState
	j, err := r.broker.Submit(JobDescription{Executable: "x"}, "local://")
	if err != nil {
		t.Fatal(err)
	}
	j.OnState(func(s JobState) {
		mu.Lock()
		states = append(states, s)
		mu.Unlock()
	})
	j.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(states) == 0 || states[len(states)-1] != Stopped {
		t.Fatalf("states = %v", states)
	}
}

func TestStageInAndOut(t *testing.T) {
	r := newRig(t, 2)
	r.fs.Write("desktop", "/in.dat", []byte("data"))
	r.catalog.Register("transform", func(ctx *Context) error {
		in, err := ctx.FS.Read(ctx.Hosts[0], "/work/in.dat")
		if err != nil {
			return err
		}
		ctx.FS.Write(ctx.Hosts[0], "/work/out.dat", append(in, '!'))
		return nil
	})
	j, err := r.broker.Submit(JobDescription{
		Executable: "transform",
		StageIn:    []FilePair{{"/in.dat", "/work/in.dat"}},
		StageOut:   []FilePair{{"/work/out.dat", "/results/out.dat"}},
	}, "sge://"+r.cluster.Frontend)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	out, err := r.fs.Read("desktop", "/results/out.dat")
	if err != nil || string(out) != "data!" {
		t.Fatalf("staged out: %q, %v", out, err)
	}
}

func TestFailedProcessMarksJobFailed(t *testing.T) {
	r := newRig(t, 1)
	boom := errors.New("boom")
	r.catalog.Register("bad", func(*Context) error { return boom })
	j, _ := r.broker.Submit(JobDescription{Executable: "bad"}, "local://")
	if err := j.Wait(); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if j.State() != Failed {
		t.Fatalf("state = %v", j.State())
	}
}

func TestJobStateString(t *testing.T) {
	for s := Unsubmitted; s <= Canceled; s++ {
		if s.String() == fmt.Sprintf("JobState(%d)", int32(s)) {
			t.Fatalf("missing name for state %d", s)
		}
	}
}
