// Package gat reimplements JavaGAT (van Nieuwpoort et al., SC'07): a
// uniform API over heterogeneous middleware. "Instead of writing software
// for one specific middleware, applications can use the generic JavaGAT
// interface" — jobs and files are the core concepts, adapters implement them
// per middleware (local, ssh, pbs, sge, zorilla here), and the broker
// automatically selects a working adapter for each resource, exactly the
// paper's usage.
//
// Executables are Go functions registered in a Catalog (the reproduction's
// substitute for installed binaries — the paper likewise assumes AMUSE is
// pre-installed on every resource).
package gat

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"jungle/internal/vnet"
)

// JobState is the lifecycle state of a job, mirroring JavaGAT's state model.
type JobState int32

// Job states.
const (
	Unsubmitted JobState = iota
	Scheduled            // accepted by middleware, waiting for nodes
	Running
	Stopped // finished normally
	Failed
	Canceled
)

func (s JobState) String() string {
	switch s {
	case Unsubmitted:
		return "unsubmitted"
	case Scheduled:
		return "scheduled"
	case Running:
		return "running"
	case Stopped:
		return "stopped"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	default:
		return fmt.Sprintf("JobState(%d)", int32(s))
	}
}

// Errors.
var (
	ErrUnknownExecutable = errors.New("gat: unknown executable")
	ErrNoAdapter         = errors.New("gat: no adapter could submit the job")
	ErrUnknownScheme     = errors.New("gat: unknown middleware scheme")
	ErrUnknownCluster    = errors.New("gat: unknown cluster")
	ErrTooManyNodes      = errors.New("gat: job requests more nodes than the cluster has")
	ErrCanceled          = errors.New("gat: job canceled")
)

// FilePair names a staging transfer.
type FilePair struct {
	SrcPath, DstPath string
}

// JobDescription is what the user submits (JavaGAT's JobDescription +
// SoftwareDescription collapsed).
type JobDescription struct {
	Executable string   // catalog name
	Args       []string // passed to the process
	Nodes      int      // node count (default 1)
	// StageIn copies files from the submit host to the job's primary node
	// before it starts; StageOut copies back after it stops.
	StageIn  []FilePair
	StageOut []FilePair
}

// Process is a registered executable: it runs on the allocated nodes with a
// Context. A non-nil error fails the job.
type Process func(ctx *Context) error

// Context is the runtime environment handed to a Process.
type Context struct {
	// Hosts are the allocated node host names; Hosts[0] is primary.
	Hosts []string
	// Args from the description.
	Args []string
	// Net is the virtual network (for opening listeners/dials).
	Net *vnet.Network
	// FS is the virtual filesystem.
	FS *FS
	// Cancel is closed when the job is canceled (the paper's "reservation
	// ends and the worker is killed by the scheduler").
	Cancel <-chan struct{}
	// SubmittedAt is the virtual time the job was submitted; StartedAt the
	// virtual time execution began (queue waits and staging included).
	SubmittedAt, StartedAt time.Duration
}

// Canceled reports whether cancellation was requested.
func (c *Context) Canceled() bool {
	select {
	case <-c.Cancel:
		return true
	default:
		return false
	}
}

// Catalog maps executable names to processes.
type Catalog struct {
	mu    sync.RWMutex
	procs map[string]Process
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{procs: make(map[string]Process)}
}

// Register adds (or replaces) an executable.
func (c *Catalog) Register(name string, p Process) {
	c.mu.Lock()
	c.procs[name] = p
	c.mu.Unlock()
}

// Lookup finds an executable.
func (c *Catalog) Lookup(name string) (Process, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	p, ok := c.procs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownExecutable, name)
	}
	return p, nil
}

var jobIDs atomic.Int64

// Job is a submitted job. State transitions: Scheduled → Running →
// Stopped/Failed/Canceled.
type Job struct {
	ID      int64
	Desc    JobDescription
	Adapter string // adapter that accepted the job
	Target  string // resource it was submitted to

	mu        sync.Mutex
	state     JobState
	err       error
	hosts     []string
	startedAt time.Duration
	listeners []func(JobState)

	cancel chan struct{}
	done   chan struct{}
}

func newJob(desc JobDescription, adapter, target string) *Job {
	return &Job{
		ID: jobIDs.Add(1), Desc: desc, Adapter: adapter, Target: target,
		state:  Scheduled,
		cancel: make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// State returns the current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the job error after it stopped (nil on success).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Hosts returns the allocated nodes (empty until Running).
func (j *Job) Hosts() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.hosts...)
}

// StartedAt returns the virtual time execution began.
func (j *Job) StartedAt() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.startedAt
}

// OnState registers a listener invoked on every state change (monitoring —
// requirement 3 of §4.3).
func (j *Job) OnState(fn func(JobState)) {
	j.mu.Lock()
	j.listeners = append(j.listeners, fn)
	j.mu.Unlock()
}

// Wait blocks until the job stops and returns its error.
func (j *Job) Wait() error {
	<-j.done
	return j.Err()
}

// Done returns a channel closed when the job stops.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancellation exposes the cancel channel for external adapters that block
// while allocating resources.
func (j *Job) Cancellation() <-chan struct{} { return j.cancel }

// MarkCanceled finalizes a job that an external adapter abandoned before
// execution (e.g. canceled while waiting for peers).
func (j *Job) MarkCanceled(err error) { j.setState(Canceled, err) }

// MarkFailed finalizes a job that an external adapter could not start.
func (j *Job) MarkFailed(err error) { j.setState(Failed, err) }

// Cancel requests cancellation. Processes observe it via Context.Cancel.
func (j *Job) Cancel() {
	j.mu.Lock()
	select {
	case <-j.cancel:
		j.mu.Unlock()
		return
	default:
	}
	close(j.cancel)
	j.mu.Unlock()
}

func (j *Job) setState(s JobState, err error) {
	j.mu.Lock()
	if j.state == Stopped || j.state == Failed || j.state == Canceled {
		j.mu.Unlock()
		return
	}
	j.state = s
	if err != nil && j.err == nil {
		j.err = err
	}
	fns := append(([]func(JobState))(nil), j.listeners...)
	j.mu.Unlock()
	for _, fn := range fns {
		fn(s)
	}
	if s == Stopped || s == Failed || s == Canceled {
		close(j.done)
	}
}

func (j *Job) setRunning(hosts []string, at time.Duration) {
	j.mu.Lock()
	j.hosts = append([]string(nil), hosts...)
	j.startedAt = at
	j.mu.Unlock()
	j.setState(Running, nil)
}
