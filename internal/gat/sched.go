package gat

import (
	"sync"
	"time"
)

// clusterSched is a FIFO batch scheduler over a cluster's nodes — the
// queueing behaviour of PBS/SGE that the paper's resources (DAS-4, LGM) sit
// behind ("a grid resource will have to be reserved", "long queues ... may
// lead users to opportunistically choose whatever machine is available").
type clusterSched struct {
	mu      sync.Mutex
	nodes   []string
	busy    map[string]bool
	waiters []*waiter
}

type waiter struct {
	n  int
	ch chan []string
}

func newClusterSched(nodes []string) *clusterSched {
	return &clusterSched{nodes: append([]string(nil), nodes...), busy: make(map[string]bool)}
}

// size returns the total node count.
func (s *clusterSched) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.nodes)
}

// freeNodes returns currently idle node names.
func (s *clusterSched) freeLocked() []string {
	var out []string
	for _, n := range s.nodes {
		if !s.busy[n] {
			out = append(out, n)
		}
	}
	return out
}

// acquire blocks until n nodes are allocated or cancel fires. FIFO order:
// a big job at the head blocks smaller later jobs (no backfill), the
// conservative batch model.
func (s *clusterSched) acquire(n int, cancel <-chan struct{}) ([]string, error) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	if n > len(s.nodes) {
		s.mu.Unlock()
		return nil, ErrTooManyNodes
	}
	if len(s.waiters) == 0 {
		if free := s.freeLocked(); len(free) >= n {
			got := free[:n]
			for _, h := range got {
				s.busy[h] = true
			}
			s.mu.Unlock()
			return got, nil
		}
	}
	w := &waiter{n: n, ch: make(chan []string, 1)}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()

	select {
	case hosts := <-w.ch:
		return hosts, nil
	case <-cancel:
		s.mu.Lock()
		for i, x := range s.waiters {
			if x == w {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		// The grant may have raced with cancellation; release it.
		select {
		case hosts := <-w.ch:
			s.release(hosts)
		default:
		}
		return nil, ErrCanceled
	}
}

// release returns nodes to the pool and serves queued waiters FIFO.
func (s *clusterSched) release(hosts []string) {
	s.mu.Lock()
	for _, h := range hosts {
		delete(s.busy, h)
	}
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		free := s.freeLocked()
		if len(free) < w.n {
			break
		}
		got := free[:w.n]
		for _, h := range got {
			s.busy[h] = true
		}
		s.waiters = s.waiters[1:]
		w.ch <- got
	}
	s.mu.Unlock()
}

// queueDelay is the virtual submission overhead per middleware: batch
// systems add scheduling latency that interactive SSH does not.
func queueDelay(scheme string) time.Duration {
	switch scheme {
	case "pbs", "sge":
		return 2 * time.Second
	case "zorilla":
		return 500 * time.Millisecond
	case "ssh":
		return 200 * time.Millisecond
	default:
		return 10 * time.Millisecond
	}
}
