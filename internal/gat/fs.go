package gat

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"jungle/internal/vnet"
)

// ErrNoFile is returned when reading a missing file.
var ErrNoFile = errors.New("gat: no such file")

// FS is a virtual per-host filesystem: the substrate for JavaGAT's file
// management ("input and output files should automatically be copied to
// where they are needed" — §4.3 requirement 1). Copies between hosts cross
// the virtual network and are accounted as "file" traffic.
type FS struct {
	net *vnet.Network

	mu    sync.Mutex
	files map[string]map[string][]byte // host -> path -> content
}

// NewFS returns an empty filesystem over the network.
func NewFS(net *vnet.Network) *FS {
	return &FS{net: net, files: make(map[string]map[string][]byte)}
}

// Write stores content at host:path.
func (f *FS) Write(host, path string, content []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	hostFiles, ok := f.files[host]
	if !ok {
		hostFiles = make(map[string][]byte)
		f.files[host] = hostFiles
	}
	cp := make([]byte, len(content))
	copy(cp, content)
	hostFiles[path] = cp
}

// Read returns the content of host:path.
func (f *FS) Read(host, path string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	content, ok := f.files[host][path]
	if !ok {
		return nil, fmt.Errorf("%w: %s:%s", ErrNoFile, host, path)
	}
	cp := make([]byte, len(content))
	copy(cp, content)
	return cp, nil
}

// Exists reports whether host:path exists.
func (f *FS) Exists(host, path string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.files[host][path]
	return ok
}

// List returns the sorted paths stored on a host.
func (f *FS) List(host string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []string
	for p := range f.files[host] {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Copy moves srcHost:srcPath to dstHost:dstPath across the virtual network,
// returning the virtual transfer duration. Same-host copies are free.
func (f *FS) Copy(srcHost, srcPath, dstHost, dstPath string) (time.Duration, error) {
	content, err := f.Read(srcHost, srcPath)
	if err != nil {
		return 0, err
	}
	var cost time.Duration
	if srcHost != dstHost {
		path, err := f.net.Route(srcHost, dstHost)
		if err != nil {
			return 0, fmt.Errorf("gat: copy %s:%s -> %s:%s: %w", srcHost, srcPath, dstHost, dstPath, err)
		}
		cost = path.TransferTime(len(content))
		f.net.RecordTransfer(srcHost, dstHost, "file", len(content))
	}
	f.Write(dstHost, dstPath, content)
	return cost, nil
}
