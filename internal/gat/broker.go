package gat

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"jungle/internal/vnet"
)

// Adapter submits a job to one middleware family. Implementations: local,
// ssh, pbs, sge (here) and zorilla (in the zorilla package).
type Adapter interface {
	// Scheme returns the URI scheme this adapter serves.
	Scheme() string
	// Submit starts the job asynchronously on the target host. It returns
	// an error when this middleware cannot serve the target at all (the
	// broker then tries the next adapter).
	Submit(b *Broker, j *Job, target string) error
}

// Broker is the JavaGAT resource broker: it owns the adapter set, the
// executable catalog, the virtual filesystem, and per-cluster schedulers.
type Broker struct {
	Net     *vnet.Network
	FS      *FS
	Catalog *Catalog
	// SubmitHost is the host this broker (the daemon) runs on; staging
	// sources and middleware reachability checks are relative to it.
	SubmitHost string

	mu       sync.Mutex
	adapters []Adapter
	clusters map[string]*clusterSched // frontend host -> scheduler
	now      func() time.Duration     // virtual clock source
}

// NewBroker returns a broker with the standard adapter stack (local, ssh,
// sge, pbs) in JavaGAT's preference order.
func NewBroker(network *vnet.Network, fs *FS, catalog *Catalog, submitHost string) *Broker {
	b := &Broker{
		Net: network, FS: fs, Catalog: catalog, SubmitHost: submitHost,
		clusters: make(map[string]*clusterSched),
		now:      func() time.Duration { return 0 },
	}
	b.adapters = []Adapter{&localAdapter{}, &sshAdapter{}, &sgeAdapter{}, &pbsAdapter{}}
	return b
}

// SetClock installs a virtual clock source used to stamp job submit times.
func (b *Broker) SetClock(now func() time.Duration) {
	b.mu.Lock()
	b.now = now
	b.mu.Unlock()
}

// Now returns the broker's current virtual time.
func (b *Broker) Now() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.now()
}

// AddAdapter appends an adapter (e.g. zorilla) to the selection order.
func (b *Broker) AddAdapter(a Adapter) {
	b.mu.Lock()
	b.adapters = append(b.adapters, a)
	b.mu.Unlock()
}

// RegisterCluster makes a batch cluster known: frontend is the submission
// point (pbs://frontend or sge://frontend), nodes its compute nodes.
func (b *Broker) RegisterCluster(frontend string, nodes []string) {
	b.mu.Lock()
	b.clusters[frontend] = newClusterSched(nodes)
	b.mu.Unlock()
}

// cluster returns the scheduler for a frontend.
func (b *Broker) cluster(frontend string) (*clusterSched, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.clusters[frontend]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCluster, frontend)
	}
	return s, nil
}

// FreeNodes reports the idle node count of a registered cluster.
func (b *Broker) FreeNodes(frontend string) (int, error) {
	s, err := b.cluster(frontend)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.freeLocked()), nil
}

// Submit starts a job on the resource named by uri ("scheme://host" or
// bare "host" for automatic adapter selection). The returned job is already
// Scheduled; use Wait or OnState to follow it.
func (b *Broker) Submit(desc JobDescription, uri string) (*Job, error) {
	if desc.Nodes < 1 {
		desc.Nodes = 1
	}
	if _, err := b.Catalog.Lookup(desc.Executable); err != nil {
		return nil, err
	}
	scheme, target := splitURI(uri)

	b.mu.Lock()
	adapters := append([]Adapter(nil), b.adapters...)
	b.mu.Unlock()

	if scheme != "" {
		for _, a := range adapters {
			if a.Scheme() != scheme {
				continue
			}
			j := newJob(desc, scheme, target)
			if err := a.Submit(b, j, target); err != nil {
				return nil, err
			}
			return j, nil
		}
		return nil, fmt.Errorf("%w: %q", ErrUnknownScheme, scheme)
	}

	// Automatic selection: first adapter that accepts wins — "JavaGAT will
	// automatically select the appropriate adapter for each resource".
	var errs []string
	for _, a := range adapters {
		j := newJob(desc, a.Scheme(), target)
		if err := a.Submit(b, j, target); err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", a.Scheme(), err))
			continue
		}
		return j, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrNoAdapter, strings.Join(errs, "; "))
}

func splitURI(uri string) (scheme, target string) {
	if i := strings.Index(uri, "://"); i >= 0 {
		return uri[:i], uri[i+3:]
	}
	return "", uri
}

// Execute stages files, runs the process on the allocated hosts, stages
// out, invokes release (may be nil) and finalizes the job state. It is the
// adapter-side entry point; external adapters (zorilla) call it on their own
// goroutine after allocating hosts.
func (b *Broker) Execute(j *Job, hosts []string, release func(), submitOverhead time.Duration) {
	defer func() {
		if release != nil {
			release()
		}
	}()

	proc, err := b.Catalog.Lookup(j.Desc.Executable)
	if err != nil {
		j.setState(Failed, err)
		return
	}

	start := b.Now() + submitOverhead
	// Stage in (to the primary node).
	for _, fp := range j.Desc.StageIn {
		cost, err := b.FS.Copy(b.SubmitHost, fp.SrcPath, hosts[0], fp.DstPath)
		if err != nil {
			j.setState(Failed, fmt.Errorf("stage in: %w", err))
			return
		}
		start += cost
	}

	ctx := &Context{
		Hosts: hosts, Args: j.Desc.Args, Net: b.Net, FS: b.FS,
		Cancel: j.cancel, SubmittedAt: b.Now(), StartedAt: start,
	}
	j.setRunning(hosts, start)
	err = proc(ctx)

	select {
	case <-j.cancel:
		j.setState(Canceled, ErrCanceled)
		return
	default:
	}
	if err != nil {
		j.setState(Failed, err)
		return
	}
	for _, fp := range j.Desc.StageOut {
		if _, err := b.FS.Copy(hosts[0], fp.SrcPath, b.SubmitHost, fp.DstPath); err != nil {
			j.setState(Failed, fmt.Errorf("stage out: %w", err))
			return
		}
	}
	j.setState(Stopped, nil)
}

// localAdapter runs jobs on the submit host itself.
type localAdapter struct{}

func (a *localAdapter) Scheme() string { return "local" }

func (a *localAdapter) Submit(b *Broker, j *Job, target string) error {
	if target != "" && target != b.SubmitHost && target != "localhost" {
		return fmt.Errorf("gat: local adapter cannot reach %q", target)
	}
	if j.Desc.Nodes > 1 {
		return fmt.Errorf("gat: local adapter is single-node (%d requested)", j.Desc.Nodes)
	}
	go b.Execute(j, []string{b.SubmitHost}, nil, queueDelay("local"))
	return nil
}

// sshAdapter runs single-node jobs directly on a remote host via its sshd.
type sshAdapter struct{}

func (a *sshAdapter) Scheme() string { return "ssh" }

func (a *sshAdapter) Submit(b *Broker, j *Job, target string) error {
	if target == "" {
		return fmt.Errorf("gat: ssh adapter needs a host")
	}
	if j.Desc.Nodes > 1 {
		return fmt.Errorf("gat: ssh adapter is single-node (%d requested)", j.Desc.Nodes)
	}
	h := b.Net.Host(target)
	if h == nil {
		return fmt.Errorf("gat: ssh: %w: %q", vnet.ErrUnknownHost, target)
	}
	ok, err := b.Net.AllowsInboundFrom(target, b.SubmitHost, vnet.SSHPort)
	if err != nil {
		return err
	}
	if !ok || !b.Net.Reachable(b.SubmitHost, target) {
		return fmt.Errorf("gat: ssh: %s not reachable from %s", target, b.SubmitHost)
	}
	go b.Execute(j, []string{target}, nil, queueDelay("ssh"))
	return nil
}

// batchSubmit is shared by the PBS and SGE adapters: allocate nodes from
// the cluster scheduler (queueing FIFO), then run.
func batchSubmit(b *Broker, j *Job, frontend, scheme string) error {
	sched, err := b.cluster(frontend)
	if err != nil {
		return err
	}
	if j.Desc.Nodes > sched.size() {
		return fmt.Errorf("%w: %d > %d on %s", ErrTooManyNodes, j.Desc.Nodes, sched.size(), frontend)
	}
	if ok, err := b.Net.AllowsInboundFrom(frontend, b.SubmitHost, vnet.SSHPort); err != nil || !ok {
		return fmt.Errorf("gat: %s: frontend %s not reachable from %s", scheme, frontend, b.SubmitHost)
	}
	go func() {
		hosts, err := sched.acquire(j.Desc.Nodes, j.cancel)
		if err != nil {
			j.setState(Canceled, err)
			return
		}
		b.Execute(j, hosts, func() { sched.release(hosts) }, queueDelay(scheme))
	}()
	return nil
}

// pbsAdapter submits to a PBS-managed cluster frontend.
type pbsAdapter struct{}

func (a *pbsAdapter) Scheme() string { return "pbs" }

func (a *pbsAdapter) Submit(b *Broker, j *Job, target string) error {
	return batchSubmit(b, j, target, "pbs")
}

// sgeAdapter submits to an SGE-managed cluster frontend (DAS-4's scheduler).
type sgeAdapter struct{}

func (a *sgeAdapter) Scheme() string { return "sge" }

func (a *sgeAdapter) Submit(b *Broker, j *Job, target string) error {
	return batchSubmit(b, j, target, "sge")
}
