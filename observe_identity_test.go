package jungle

// The observability plane is default-on, so its regression guarantee is
// byte-identity: recording must be passive. For each headline benchmark
// scenario (pipelined kicks, a sharded gang, checkpoint recovery) a run
// with the plane on and a run with it off must end at the same virtual
// time with bit-identical model state.

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/amuse/ic"
	"jungle/internal/core"
)

// gravityDigest is the FNV-1a hash of the model's phase-space state, the
// same observable the checkpoint bit-compatibility guarantee uses.
func gravityDigest(t *testing.T, g *core.Gravity) uint64 {
	t.Helper()
	st, err := g.GetState(nil, data.AttrPos, data.AttrVel)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, col := range [][]data.Vec3{st.Vec(data.AttrPos), st.Vec(data.AttrVel)} {
		for _, v := range col {
			for d := 0; d < 3; d++ {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v[d]))
				h.Write(buf[:])
			}
		}
	}
	return h.Sum64()
}

// runArms executes one scenario twice — plane on (the default), plane off
// (Monitor nilled before any worker starts) — and requires equal virtual
// elapsed times and state digests.
func runArms(t *testing.T, scenario func(t *testing.T, observed bool) (time.Duration, uint64)) {
	t.Helper()
	onTime, onDigest := scenario(t, true)
	offTime, offDigest := scenario(t, false)
	if onTime != offTime {
		t.Fatalf("virtual time diverged: plane on %v, plane off %v", onTime, offTime)
	}
	if onDigest != offDigest {
		t.Fatalf("state diverged: plane on %016x, plane off %016x", onDigest, offDigest)
	}
	if onTime <= 0 {
		t.Fatal("scenario advanced no virtual time; the identity check checked nothing")
	}
}

func TestPlaneByteIdentityPipelinedKick(t *testing.T) {
	stars := ic.Plummer(64, 30)
	runArms(t, func(t *testing.T, observed bool) (time.Duration, uint64) {
		tb, err := core.NewLabTestbed()
		if err != nil {
			t.Fatal(err)
		}
		defer tb.Close()
		sim := core.NewSimulation(context.Background(), tb.Daemon, nil)
		defer sim.Stop()
		if !observed {
			sim.Monitor = nil
		}
		var models []*core.Gravity
		for _, r := range []string{"lgm", "das4-vu", "das4-uva", "das4-tud"} {
			g, err := sim.NewGravity(context.Background(),
				core.WorkerSpec{Resource: r, Channel: core.ChannelIbis},
				core.GravityOptions{Eps: 0.01})
			if err != nil {
				t.Fatal(err)
			}
			if err := g.SetParticles(stars); err != nil {
				t.Fatal(err)
			}
			models = append(models, g)
		}
		dv := make([]data.Vec3, stars.Len())
		calls := make([]core.Waiter, len(models))
		for i := 0; i < 3; i++ {
			for j, g := range models {
				calls[j] = g.GoKick(dv)
			}
			if err := core.Gather(context.Background(), calls...); err != nil {
				t.Fatal(err)
			}
		}
		if err := models[0].EvolveTo(context.Background(), 1.0/64); err != nil {
			t.Fatal(err)
		}
		return sim.Elapsed(), gravityDigest(t, models[0])
	})
}

func TestPlaneByteIdentityShardedKick(t *testing.T) {
	stars := ic.Plummer(512, 5)
	runArms(t, func(t *testing.T, observed bool) (time.Duration, uint64) {
		tb, err := core.NewDSLTestbed()
		if err != nil {
			t.Fatal(err)
		}
		defer tb.Close()
		sim := core.NewSimulation(context.Background(), tb.Daemon, nil)
		defer sim.Stop()
		if !observed {
			sim.Monitor = nil
		}
		g, err := sim.NewGravity(context.Background(),
			core.WorkerSpec{Resource: tb.SiteA, Channel: core.ChannelIbis, Workers: 4},
			core.GravityOptions{Eps: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.SetParticles(stars); err != nil {
			t.Fatal(err)
		}
		dv := make([]data.Vec3, stars.Len())
		target := 0.0
		for i := 0; i < 2; i++ {
			if err := g.Kick(context.Background(), dv); err != nil {
				t.Fatal(err)
			}
			target += 1e-6
			if err := g.EvolveTo(context.Background(), target); err != nil {
				t.Fatal(err)
			}
		}
		return sim.Elapsed(), gravityDigest(t, g)
	})
}

func TestPlaneByteIdentityCheckpointRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	const tCkpt = 1.0 / 16
	stars := ic.Plummer(128, 77)
	runArms(t, func(t *testing.T, observed bool) (time.Duration, uint64) {
		tb, err := core.NewSC11Testbed()
		if err != nil {
			t.Fatal(err)
		}
		defer tb.Close()
		sim := core.NewSimulation(context.Background(), tb.Daemon, nil)
		defer sim.Stop()
		if !observed {
			sim.Monitor = nil
		}
		g, err := sim.NewGravity(context.Background(),
			core.WorkerSpec{Resource: "lgm", Channel: core.ChannelIbis},
			core.GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		g.EnableReplacement()
		if err := g.SetParticles(stars); err != nil {
			t.Fatal(err)
		}
		if err := g.EvolveTo(context.Background(), tCkpt); err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Checkpoint(context.Background()); err != nil {
			t.Fatal(err)
		}
		died := make(chan int, 1)
		tb.Daemon.OnWorkerDied = func(id int) {
			select {
			case died <- id:
			default:
			}
		}
		tb.Daemon.KillWorker(g.WorkerIDs()[0])
		select {
		case <-died:
		case <-time.After(10 * time.Second):
			t.Fatal("death not observed")
		}
		// The next call triggers replacement: substitute worker, setup
		// replay, snapshot restore — the restore gauge must record without
		// perturbing any of it.
		if _, _, err := g.Energy(context.Background()); err != nil {
			t.Fatal(err)
		}
		return sim.Elapsed(), gravityDigest(t, g)
	})
}
