package jungle

// One benchmark per table/figure of the paper's evaluation (§6), plus
// micro-benchmarks of the substrates. The headline experiment benchmarks
// report *virtual* seconds per iteration via b.ReportMetric (the paper's
// metric); wall-clock ns/op measures the reproduction itself.
//
// The full calibrated workload (scale 1) runs real physics for ~10 s per
// scenario; benchmarks default to a reduced scale and the jungle-bench
// command covers scale 1.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"jungle/internal/amuse/data"
	"jungle/internal/amuse/ic"
	"jungle/internal/core"
	"jungle/internal/core/kernel"
	"jungle/internal/ensemble"
	"jungle/internal/exp"
	"jungle/internal/mpisim"
	"jungle/internal/phys/abm"
	"jungle/internal/phys/nbody"
	"jungle/internal/phys/sph"
	"jungle/internal/phys/tree"
	"jungle/internal/sched"
	"jungle/internal/vnet"
	"jungle/internal/vtime"
)

const benchScale = 0.1 // workload fraction for the scenario benchmarks

// BenchmarkE1LabConditions regenerates the §6.2 table: one sub-benchmark
// per scenario, virtual seconds per iteration as the reported metric.
func BenchmarkE1LabConditions(b *testing.B) {
	w := exp.DefaultWorkload().Scaled(benchScale)
	names := []string{"cpu-only", "local-gpu", "remote-gpu", "jungle"}
	for _, name := range names {
		b.Run(name, func(b *testing.B) {
			var virtual float64
			for i := 0; i < b.N; i++ {
				tb, err := core.NewLabTestbed()
				if err != nil {
					b.Fatal(err)
				}
				var placement exp.Placement
				for _, p := range exp.LabScenarios(tb) {
					if p.Name == name {
						placement = p
					}
				}
				res, err := exp.RunScenario(context.Background(), tb, w, placement, 1)
				tb.Close()
				if err != nil {
					b.Fatal(err)
				}
				virtual = res.PerIteration.Seconds()
			}
			b.ReportMetric(virtual, "virtual-s/iter")
			b.ReportMetric(exp.E1PaperSeconds[name], "paper-s/iter")
		})
	}
}

// BenchmarkE2SC11 regenerates the Fig. 9 worst case: the transatlantic
// coupler.
func BenchmarkE2SC11(b *testing.B) {
	w := exp.DefaultWorkload().Scaled(benchScale)
	var virtual float64
	for i := 0; i < b.N; i++ {
		tb, err := core.NewSC11Testbed()
		if err != nil {
			b.Fatal(err)
		}
		res, err := exp.RunScenario(context.Background(), tb, w, exp.SC11Placement(tb), 1)
		tb.Close()
		if err != nil {
			b.Fatal(err)
		}
		virtual = res.PerIteration.Seconds()
	}
	b.ReportMetric(virtual, "virtual-s/iter")
}

// BenchmarkE3Overlay measures SmartSockets overlay construction on the
// SC11 network (Fig. 10): hubs, tunnels, gossip convergence.
func BenchmarkE3Overlay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := core.NewSC11Testbed()
		if err != nil {
			b.Fatal(err)
		}
		if !tb.Deployment.Overlay().Connected() {
			b.Fatal("overlay not connected")
		}
		tb.Close()
	}
}

// BenchmarkE5Evolution regenerates the Fig. 6 physics: embedded cluster
// with supernova-driven gas expulsion.
func BenchmarkE5Evolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, stages, err := exp.E5(40, 400, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		if len(stages) != 4 {
			b.Fatal("missing stages")
		}
	}
}

// BenchmarkE7Loopback measures the real-TCP loopback channel of §5 (the
// paper: ">8 Gbit/s ... extremely small latency").
func BenchmarkE7Loopback(b *testing.B) {
	var last exp.E7Result
	for i := 0; i < b.N; i++ {
		res, err := exp.RunE7(64<<20, 1<<20, 100)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.ThroughputGbit, "Gbit/s")
	b.ReportMetric(float64(last.RTT.Nanoseconds()), "rtt-ns")
}

// BenchmarkE8ScaleUp measures the workload at growing scales (the §7
// scale-up direction) on the jungle placement.
func BenchmarkE8ScaleUp(b *testing.B) {
	for _, scale := range []float64{0.05, 0.1, 0.2} {
		b.Run(fmt.Sprintf("scale-%g", scale), func(b *testing.B) {
			w := exp.DefaultWorkload().Scaled(scale)
			var virtual float64
			for i := 0; i < b.N; i++ {
				tb, err := core.NewLabTestbed()
				if err != nil {
					b.Fatal(err)
				}
				res, err := exp.RunScenario(context.Background(), tb, w, exp.LabScenarios(tb)[3], 1)
				tb.Close()
				if err != nil {
					b.Fatal(err)
				}
				virtual = res.PerIteration.Seconds()
			}
			b.ReportMetric(virtual, "virtual-s/iter")
		})
	}
}

// --- substrate micro-benchmarks ---

func cpuDev() *vtime.Device {
	return &vtime.Device{Name: "cpu", Kind: vtime.CPU, Gflops: 8, Cores: 4}
}

// BenchmarkHermiteStep measures one shared Hermite step at N=1000 (the
// PhiGRAPE inner loop).
func BenchmarkHermiteStep(b *testing.B) {
	stars := ic.Plummer(1000, 1)
	s := nbody.NewSystem(nbody.NewCPUKernel(cpuDev()), 0.01)
	s.SetParticles(stars)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeField measures one Octgrav/Fi coupling evaluation: 10k gas
// sources onto 1k star targets.
func BenchmarkTreeField(b *testing.B) {
	stars, gas, err := ic.EmbeddedCluster(ic.ClusterSpec{Stars: 1000, Gas: 10000, GasFrac: 0.9, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	k := tree.NewFi(cpuDev())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.FieldAt(context.Background(), gas.Mass, gas.Pos, stars.Pos, 0.05)
	}
}

// BenchmarkSPHStep measures one SPH step at N=10000 (the Gadget inner
// loop).
func BenchmarkSPHStep(b *testing.B) {
	_, gas, err := ic.EmbeddedCluster(ic.ClusterSpec{Stars: 1, Gas: 10000, GasFrac: 0.9, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	g := sph.New()
	if err := g.SetParticles(gas); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	target := 0.0
	for i := 0; i < b.N; i++ {
		target += 1e-4
		if err := g.EvolveTo(context.Background(), target); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSmartSocketsConnect measures virtual connection setup through
// the overlay (reverse connection to a firewalled host).
func BenchmarkSmartSocketsConnect(b *testing.B) {
	tb, err := core.NewLabTestbed()
	if err != nil {
		b.Fatal(err)
	}
	defer tb.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := tb.Net.Dial("desktop", "das4-vu.fe", vnet.SSHPort)
		if err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}

// BenchmarkMPIAllreduce measures an 8-rank allreduce over the virtual
// cluster network (the SPH worker's hot collective).
func BenchmarkMPIAllreduce(b *testing.B) {
	net := vnet.New()
	c, err := net.AddCluster(vnet.ClusterSpec{Name: "bench", Site: "s", Nodes: 8,
		FrontendPolicy: vnet.Open, NodePolicy: vnet.Open})
	if err != nil {
		b.Fatal(err)
	}
	w, err := mpisim.NewWorld(net, c.NodeName)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	x := make([]float64, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := w.Run(func(r *mpisim.Rank) error {
			_, err := r.AllreduceSum(x)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// benchStateWorker starts a 1000-star gravity worker behind the full ibis
// channel stack for the state-transfer benchmarks.
func benchStateWorker(b *testing.B) (*core.Testbed, *core.Simulation, *core.Gravity) {
	b.Helper()
	tb, err := core.NewLabTestbed()
	if err != nil {
		b.Fatal(err)
	}
	sim := core.NewSimulation(context.Background(), tb.Daemon, nil)
	g, err := sim.NewGravity(context.Background(), core.WorkerSpec{Resource: "lgm", Channel: core.ChannelIbis},
		core.GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
	if err != nil {
		b.Fatal(err)
	}
	if err := g.SetParticles(ic.Plummer(1000, 13)); err != nil {
		b.Fatal(err)
	}
	return tb, sim, g
}

// BenchmarkBatchedStateTransfer pushes a whole 1000-particle mass column
// to a remote worker in ONE set_state round trip through the hand-rolled
// columnar codec — the batched path the coupled step uses.
func BenchmarkBatchedStateTransfer(b *testing.B) {
	tb, sim, g := benchStateWorker(b)
	defer tb.Close()
	defer sim.Stop()
	masses := g.Masses()
	st := kernel.NewState(len(masses)).AddFloat(data.AttrMass, masses)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.SetState(context.Background(), st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerCallStateTransfer pushes the same 1000-particle mass column
// as 1000 individual set_mass RPCs — the per-particle path the batched
// protocol replaces. Compare ns/op against BenchmarkBatchedStateTransfer.
func BenchmarkPerCallStateTransfer(b *testing.B) {
	tb, sim, g := benchStateWorker(b)
	defer tb.Close()
	defer sim.Stop()
	masses := g.Masses()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, m := range masses {
			g.SetMass(j, m)
		}
		if err := g.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelinedKick measures a bridge-style kick phase over K remote
// models, each behind the ibis channel on its own site. "sequential"
// completes each kick before issuing the next, so a step pays every
// link's round trip back to back (~K × RTT of virtual time).
// "pipelined" is the async coupler API (GoKick + Gather): all K kicks are
// on their wide-area links before the coupler waits, so a step costs
// about the slowest single link (~1 × RTT). The virtual-us/step metrics
// of the two sub-benchmarks are the comparison.
func BenchmarkPipelinedKick(b *testing.B) {
	const nStars = 64
	resources := []string{"lgm", "das4-vu", "das4-uva", "das4-tud"}
	setup := func(b *testing.B) (*core.Testbed, *core.Simulation, []*core.Gravity) {
		b.Helper()
		tb, err := core.NewLabTestbed()
		if err != nil {
			b.Fatal(err)
		}
		sim := core.NewSimulation(context.Background(), tb.Daemon, nil)
		var models []*core.Gravity
		for i, r := range resources {
			g, err := sim.NewGravity(context.Background(),
				core.WorkerSpec{Resource: r, Channel: core.ChannelIbis},
				core.GravityOptions{Eps: 0.01})
			if err != nil {
				b.Fatal(err)
			}
			if err := g.SetParticles(ic.Plummer(nStars, int64(i+30))); err != nil {
				b.Fatal(err)
			}
			models = append(models, g)
		}
		return tb, sim, models
	}
	dv := make([]data.Vec3, nStars) // zero kick: pure channel-stack cost

	b.Run("sequential", func(b *testing.B) {
		tb, sim, models := setup(b)
		defer tb.Close()
		defer sim.Stop()
		start := sim.Elapsed()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, g := range models {
				if err := g.Kick(context.Background(), dv); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64((sim.Elapsed()-start).Microseconds())/float64(b.N), "virtual-us/step")
	})
	b.Run("pipelined", func(b *testing.B) {
		tb, sim, models := setup(b)
		defer tb.Close()
		defer sim.Stop()
		calls := make([]core.Waiter, len(models))
		start := sim.Elapsed()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, g := range models {
				calls[j] = g.GoKick(dv)
			}
			if err := core.Gather(context.Background(), calls...); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64((sim.Elapsed()-start).Microseconds())/float64(b.N), "virtual-us/step")
	})
}

// BenchmarkDirectVsHairpinTransfer measures the direct data plane against
// the coupler hairpin it replaces, on the multi-site topology the refactor
// targets: the coupler behind a DSL-class uplink, two remote sites joined
// by a fast research link, and a 1000-particle mass/position/velocity
// column set moving between them each step. "hairpin" Pulls the columns
// worker->coupler and Pushes them coupler->worker (two crossings of the
// slow uplink); "direct" orchestrates by RPC while the bytes flow
// worker->worker (one crossing of the fast inter-site link). Compare the
// virtual-us/step metrics: the modelled win is the acceptance bar's
// >= 1.5x (measured ~4x; see CHANGES.md for recorded numbers).
func BenchmarkDirectVsHairpinTransfer(b *testing.B) {
	const nStars = 1000
	setup := func(b *testing.B) (*core.Testbed, *core.Simulation, *core.Gravity, *core.Gravity) {
		b.Helper()
		tb, err := core.NewDSLTestbed()
		if err != nil {
			b.Fatal(err)
		}
		sim := core.NewSimulation(context.Background(), tb.Daemon, nil)
		newWorker := func(resource string, seed int64) *core.Gravity {
			g, err := sim.NewGravity(context.Background(),
				core.WorkerSpec{Resource: resource, Channel: core.ChannelIbis},
				core.GravityOptions{Eps: 0.01})
			if err != nil {
				b.Fatal(err)
			}
			if err := g.SetParticles(ic.Plummer(nStars, seed)); err != nil {
				b.Fatal(err)
			}
			return g
		}
		return tb, sim, newWorker(tb.SiteA, 17), newWorker(tb.SiteB, 18)
	}

	b.Run("hairpin", func(b *testing.B) {
		tb, sim, src, dst := setup(b)
		defer tb.Close()
		defer sim.Stop()
		start := sim.Elapsed()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := src.GetState(context.Background(), data.AttrMass, data.AttrPos, data.AttrVel)
			if err != nil {
				b.Fatal(err)
			}
			if err := dst.SetState(context.Background(), st); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64((sim.Elapsed()-start).Microseconds())/float64(b.N), "virtual-us/step")
	})
	b.Run("direct", func(b *testing.B) {
		tb, sim, src, dst := setup(b)
		defer tb.Close()
		defer sim.Stop()
		start := sim.Elapsed()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sim.TransferState(context.Background(), src, dst,
				data.AttrMass, data.AttrPos, data.AttrVel); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		stats := sim.TransferStats()
		if stats.Direct != b.N || stats.Fallback != 0 {
			b.Fatalf("transfer stats %+v: direct path not exercised", stats)
		}
		b.ReportMetric(float64((sim.Elapsed()-start).Microseconds())/float64(b.N), "virtual-us/step")
	})
}

// BenchmarkStripedTransfer measures the bandwidth-aware data plane on its
// target regime: a long fat pipe whose single TCP-class stream is capped
// well below link capacity (the DSL testbed's inter-site lightpath with a
// 10% per-stream cap). A 100k-particle mass/position/velocity column set
// moves worker->worker each iteration. "single" is the PR 3 direct path —
// one stream, so the transfer is bound by the per-stream cap; "striped"
// opens 8 parallel stripe streams that together fill the link. Compare the
// virtual-us/transfer metrics: the acceptance bar is the striped path
// modelling >= 2x faster.
func BenchmarkStripedTransfer(b *testing.B) {
	const nStars = 100000
	setup := func(b *testing.B, stripes int) (*core.Testbed, *core.Simulation, *core.Gravity, *core.Gravity) {
		b.Helper()
		tb, err := core.NewDSLTestbed()
		if err != nil {
			b.Fatal(err)
		}
		if err := tb.Net.SetLinkStreamCap(tb.SiteA, tb.SiteB, 1.25e7); err != nil {
			b.Fatal(err)
		}
		sim := core.NewSimulation(context.Background(), tb.Daemon, nil)
		sim.TransferStripes = stripes
		newWorker := func(resource string, seed int64) *core.Gravity {
			g, err := sim.NewGravity(context.Background(),
				core.WorkerSpec{Resource: resource, Channel: core.ChannelIbis},
				core.GravityOptions{Eps: 0.01})
			if err != nil {
				b.Fatal(err)
			}
			if err := g.SetParticles(ic.Plummer(nStars, seed)); err != nil {
				b.Fatal(err)
			}
			return g
		}
		return tb, sim, newWorker(tb.SiteA, 21), newWorker(tb.SiteB, 22)
	}
	run := func(b *testing.B, stripes int, wantStriped bool) {
		tb, sim, src, dst := setup(b, stripes)
		defer tb.Close()
		defer sim.Stop()
		start := sim.Elapsed()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sim.TransferState(context.Background(), src, dst,
				data.AttrMass, data.AttrPos, data.AttrVel); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		stats := sim.TransferStats()
		single, striped := b.N, 0
		if wantStriped {
			single, striped = 0, b.N
		}
		if stats.Direct != single || stats.Striped != striped ||
			stats.Fallback != 0 || stats.StripeFallback != 0 {
			b.Fatalf("transfer stats %+v: wrong path exercised", stats)
		}
		b.ReportMetric(float64((sim.Elapsed()-start).Microseconds())/float64(b.N), "virtual-us/transfer")
	}
	b.Run("single", func(b *testing.B) { run(b, 0, false) })
	b.Run("striped-8", func(b *testing.B) { run(b, 8, true) })
}

// BenchmarkShardedKick measures a coupled step against a gravity model at
// 4000 particles on the two-site DSL testbed, solo (K=1) versus deployed
// as a K=4 gang (WorkerSpec.Workers) on site-a. Each iteration is one
// kick + one shared Hermite step: the force evaluation is the O(N²) cost
// the gang divides by K, while the slab halo exchange rides the site's
// internal links and the coupler pays only the broadcast control RPCs.
// Compare the virtual-us/step metrics: the acceptance bar is the gang
// modelling >= 2x faster per virtual step.
func BenchmarkShardedKick(b *testing.B) {
	const nStars = 4000
	run := func(b *testing.B, workers int) {
		tb, err := core.NewDSLTestbed()
		if err != nil {
			b.Fatal(err)
		}
		defer tb.Close()
		sim := core.NewSimulation(context.Background(), tb.Daemon, nil)
		defer sim.Stop()
		g, err := sim.NewGravity(context.Background(),
			core.WorkerSpec{Resource: tb.SiteA, Channel: core.ChannelIbis, Workers: workers},
			core.GravityOptions{Eps: 0.01})
		if err != nil {
			b.Fatal(err)
		}
		if err := g.SetParticles(ic.Plummer(nStars, 5)); err != nil {
			b.Fatal(err)
		}
		dv := make([]data.Vec3, nStars) // zero kick: the channel-stack cost
		target := 0.0
		start := sim.Elapsed()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := g.Kick(context.Background(), dv); err != nil {
				b.Fatal(err)
			}
			// A hair past the current time: exactly one (shortened)
			// Hermite step per iteration, so per-step costs compare.
			target += 1e-6
			if err := g.EvolveTo(context.Background(), target); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64((sim.Elapsed()-start).Microseconds())/float64(b.N), "virtual-us/step")
	}
	b.Run("solo", func(b *testing.B) { run(b, 1) })
	b.Run("gang-4", func(b *testing.B) { run(b, 4) })
}

// BenchmarkElasticGang measures what skew-driven rebalancing buys on a
// heterogeneous site: a K=4 gravity gang at 1024 particles on the elastic
// testbed's site-mixed cluster, where one node runs at quarter speed. With
// static uniform slabs every step waits for the straggler (its quarter-
// rank costs 4x, so a step costs ~N rows of compute); with the rebalancer
// armed the slabs converge to throughput-proportional widths and a step
// costs ~0.31 N — the virtual-us/step ratio should approach 3.25x, and
// the acceptance bar is >= 2x. The trajectories are bit-identical: the
// first fixed warm-up segment is state-compared across the two arms.
func BenchmarkElasticGang(b *testing.B) {
	const nStars = 1024
	const warmupLegs = 4
	stars := ic.Plummer(nStars, 27)
	var refPos []data.Vec3 // warm-up state of the first arm, for bit-compat

	run := func(b *testing.B, rebalance bool) {
		tb, err := core.NewElasticTestbed()
		if err != nil {
			b.Fatal(err)
		}
		defer tb.Close()
		sim := core.NewSimulation(context.Background(), tb.Daemon, nil)
		defer sim.Stop()
		g, err := sim.NewGravity(context.Background(),
			core.WorkerSpec{Resource: tb.Mixed, Channel: core.ChannelIbis, Workers: 4},
			core.GravityOptions{Eps: 0.01})
		if err != nil {
			b.Fatal(err)
		}
		if rebalance {
			if err := g.EnableRebalance(core.ElasticPolicy{}); err != nil {
				b.Fatal(err)
			}
		}
		if err := g.SetParticles(stars); err != nil {
			b.Fatal(err)
		}
		// Warm-up: a fixed segment that (for the elastic arm) lets the
		// rebalancer observe the skew and reshard, and that pins the
		// bit-compat contract between the arms.
		target := 0.0
		for i := 0; i < warmupLegs; i++ {
			target += 1e-4
			if err := g.EvolveTo(context.Background(), target); err != nil {
				b.Fatal(err)
			}
			if rebalance {
				deadline := time.Now().Add(20 * time.Second)
				for g.RebalanceRounds() < uint64(i+1) && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
			}
		}
		st, err := g.GetState(nil, data.AttrPos)
		if err != nil {
			b.Fatal(err)
		}
		if refPos == nil {
			refPos = append([]data.Vec3(nil), st.Vec(data.AttrPos)...)
		} else {
			for i, p := range st.Vec(data.AttrPos) {
				if p != refPos[i] {
					b.Fatalf("particle %d: rebalanced arm diverged from static arm", i)
				}
			}
		}

		start := sim.Elapsed()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			target += 1e-6
			if err := g.EvolveTo(context.Background(), target); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64((sim.Elapsed()-start).Microseconds())/float64(b.N), "virtual-us/step")
	}
	b.Run("static", func(b *testing.B) { run(b, false) })
	b.Run("rebalanced", func(b *testing.B) { run(b, true) })
}

// BenchmarkConcurrentSessions measures what the multi-tenant control
// plane buys: 8 single-tenant workloads through one scheduler, run
// back-to-back ("sequential" — the single-tenant daemon, where each user
// waits for the previous one's session) versus as 8 concurrently
// attached sessions ("concurrent-8"). The headline metric is the batch's
// virtual makespan: serialized tenants pay the sum of their sessions'
// virtual times, overlapped tenants pay the max — the acceptance bar is
// the concurrent makespan modelling >= 2x better (8 equal tenants give
// ~8x). Real wall-clock for the batch is reported alongside. Isolation
// is asserted, not assumed: every session must end at the same state
// digest in both modes, so concurrency provably does not perturb
// results.
func BenchmarkConcurrentSessions(b *testing.B) {
	const nSessions = 8
	w := exp.DefaultWorkload().Scaled(0.05)
	run := func(b *testing.B, concurrent bool) {
		var wall time.Duration
		var makespan time.Duration
		for i := 0; i < b.N; i++ {
			tb, err := core.NewLabTestbed()
			if err != nil {
				b.Fatal(err)
			}
			s := sched.New(tb.Daemon, sched.Config{MaxLive: nSessions, Recorder: tb.Recorder})
			t0 := time.Now()
			results, err := exp.RunConcurrentSessions(context.Background(), s,
				w, exp.AutoPlacement(), 1, nSessions, concurrent)
			wall += time.Since(t0)
			if err != nil {
				b.Fatal(err)
			}
			var batch time.Duration
			for _, r := range results {
				if r.StateDigest != results[0].StateDigest {
					b.Fatalf("sessions diverged: %x vs %x", r.StateDigest, results[0].StateDigest)
				}
				// Virtual cost of one session: worker startup + its iterations.
				cost := r.Setup + time.Duration(r.Iterations)*r.PerIteration
				if concurrent {
					if cost > batch {
						batch = cost // overlapped: the batch ends with the slowest
					}
				} else {
					batch += cost // serialized: each tenant waits for the last
				}
			}
			makespan += batch
			s.Shutdown()
			tb.Close()
		}
		b.ReportMetric(float64(wall.Milliseconds())/float64(b.N), "wall-ms/batch")
		b.ReportMetric(float64(makespan.Milliseconds())/float64(b.N), "virtual-ms/makespan")
	}
	b.Run("sequential", func(b *testing.B) { run(b, false) })
	b.Run("concurrent-8", func(b *testing.B) { run(b, true) })
}

// ensembleBenchDigests remembers the first arm's per-member digest set so
// the other arm (a separate sub-benchmark) can assert bit-equality: the
// sweep's results must be identical whether members run one at a time or
// race through 16 admission slots.
var ensembleBenchDigests []uint64

// BenchmarkEnsemble measures the ensemble layer at sweep scale: a
// 256-member agent-based campaign (4 initial-condition streams × 64
// couplings) run strictly sequentially versus fanned through 16 scheduler
// admission slots. The headline metric is the campaign's virtual
// makespan; the acceptance bar is the fan-out arm modelling >= 3x better
// with every member digest bit-equal across arms.
func BenchmarkEnsemble(b *testing.B) {
	const members = 256
	newSweep := func(sequential bool) *ensemble.ABMSweep {
		ics := []float64{0, 1, 2, 3}
		bs := make([]float64, members/len(ics))
		for i := range bs {
			bs[i] = 0.05 + 0.01*float64(i)
		}
		return &ensemble.ABMSweep{
			Plan: &ensemble.Plan{
				Name:     "bench",
				BaseSeed: 256,
				Axes: []ensemble.Axis{
					{Name: ensemble.AxisIC, Values: ics},
					{Name: ensemble.AxisB, Values: bs},
				},
				SetupAxes: []string{ensemble.AxisIC},
			},
			Base:       abm.Params{W: 16, H: 16, D: 0.15, R: 0.6, B: 0.2, DT: 0.01},
			Steps:      16,
			Spec:       core.WorkerSpec{Channel: core.ChannelIbis},
			Sequential: sequential,
		}
	}
	run := func(b *testing.B, sequential bool) {
		var wall, makespan, bound time.Duration
		for i := 0; i < b.N; i++ {
			tb, err := core.NewLabTestbed()
			if err != nil {
				b.Fatal(err)
			}
			s := sched.New(tb.Daemon, sched.Config{
				MaxLive: 16, QueueCap: members,
				RetryAfter: time.Millisecond, Recorder: tb.Recorder,
			})
			t0 := time.Now()
			rep, err := newSweep(sequential).Run(context.Background(), s)
			wall += time.Since(t0)
			s.Shutdown()
			tb.Close()
			if err != nil {
				b.Fatal(err)
			}
			if rep.Failures != 0 {
				b.Fatalf("%d members failed", rep.Failures)
			}
			if ensembleBenchDigests == nil {
				ensembleBenchDigests = rep.Digests()
			}
			for j, d := range rep.Digests() {
				if d == 0 || d != ensembleBenchDigests[j] {
					b.Fatalf("member %d digest diverged across arms: %016x vs %016x",
						j, d, ensembleBenchDigests[j])
				}
			}
			makespan += rep.Makespan
			bound += rep.SumVirtual
		}
		if !sequential && makespan*3 > bound {
			b.Fatalf("fan-out makespan %v not 3x under the sequential bound %v",
				makespan/time.Duration(b.N), bound/time.Duration(b.N))
		}
		b.ReportMetric(float64(wall.Milliseconds())/float64(b.N), "wall-ms/campaign")
		b.ReportMetric(float64(makespan.Milliseconds())/float64(b.N), "virtual-ms/makespan")
	}
	b.Run("sequential", func(b *testing.B) { run(b, true) })
	b.Run("fanout-16", func(b *testing.B) { run(b, false) })
}

// BenchmarkIbisChannelRoundTrip measures one coupler->daemon->IPL->proxy->
// worker RPC round trip (the Fig. 5 path).
func BenchmarkIbisChannelRoundTrip(b *testing.B) {
	tb, err := core.NewLabTestbed()
	if err != nil {
		b.Fatal(err)
	}
	defer tb.Close()
	sim := core.NewSimulation(context.Background(), tb.Daemon, nil)
	defer sim.Stop()
	g, err := sim.NewGravity(context.Background(), core.WorkerSpec{Resource: "lgm", Channel: core.ChannelIbis},
		core.GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
	if err != nil {
		b.Fatal(err)
	}
	if err := g.SetParticles(ic.Plummer(16, 4)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.Masses() == nil {
			b.Fatal(g.Err())
		}
	}
}

// BenchmarkCheckpointRecovery measures what the checkpoint subsystem
// buys on the SC11 topology (transatlantic coupler, worker in Leiden)
// when the worker is killed partway through a run: recovering via the
// last checkpoint (substitute worker + setup replay + snapshot restore)
// versus the only pre-checkpoint option — a full restart that re-uploads
// the initial conditions and re-integrates the lost model time from
// zero. Reported metric: virtual milliseconds from observed death to the
// model answering again at the same model time.
func BenchmarkCheckpointRecovery(b *testing.B) {
	const tCkpt = 1.0 / 8 // model time already integrated when the worker dies
	stars := ic.Plummer(256, 77)

	prep := func(b *testing.B) (*core.Testbed, *core.Simulation, *core.Gravity, chan int) {
		tb, err := core.NewSC11Testbed()
		if err != nil {
			b.Fatal(err)
		}
		sim := core.NewSimulation(context.Background(), tb.Daemon, nil)
		g, err := sim.NewGravity(context.Background(),
			core.WorkerSpec{Resource: "lgm", Channel: core.ChannelIbis},
			core.GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
		if err != nil {
			b.Fatal(err)
		}
		if err := g.SetParticles(stars); err != nil {
			b.Fatal(err)
		}
		if err := g.EvolveTo(context.Background(), tCkpt); err != nil {
			b.Fatal(err)
		}
		died := make(chan int, 1)
		tb.Daemon.OnWorkerDied = func(id int) {
			select {
			case died <- id:
			default:
			}
		}
		return tb, sim, g, died
	}
	kill := func(b *testing.B, tb *core.Testbed, g *core.Gravity, died chan int) {
		tb.Daemon.KillWorker(g.WorkerIDs()[0])
		select {
		case <-died:
		case <-time.After(10 * time.Second):
			b.Fatal("death not observed")
		}
	}

	b.Run("restore-from-checkpoint", func(b *testing.B) {
		var virtual time.Duration
		for i := 0; i < b.N; i++ {
			tb, sim, g, died := prep(b)
			g.EnableReplacement()
			if _, err := sim.Checkpoint(context.Background()); err != nil {
				b.Fatal(err)
			}
			kill(b, tb, g, died)
			t0 := sim.Elapsed()
			// The next call triggers replacement: substitute worker, setup
			// replay, snapshot restore — no model time is recomputed.
			if _, _, err := g.Energy(context.Background()); err != nil {
				b.Fatal(err)
			}
			virtual += sim.Elapsed() - t0
			sim.Stop()
			tb.Close()
		}
		b.ReportMetric(float64(virtual.Milliseconds())/float64(b.N), "virtual-ms/recovery")
	})

	b.Run("full-restart", func(b *testing.B) {
		var virtual time.Duration
		for i := 0; i < b.N; i++ {
			tb, sim, g, died := prep(b)
			kill(b, tb, g, died)
			t0 := sim.Elapsed()
			// No checkpoint: start over — new worker, re-upload the initial
			// conditions over the transatlantic link, re-integrate to tCkpt.
			g2, err := sim.NewGravity(context.Background(),
				core.WorkerSpec{Resource: "lgm", Channel: core.ChannelIbis},
				core.GravityOptions{Kernel: "phigrape-gpu", Eps: 0.01})
			if err != nil {
				b.Fatal(err)
			}
			if err := g2.SetParticles(stars); err != nil {
				b.Fatal(err)
			}
			if err := g2.EvolveTo(context.Background(), tCkpt); err != nil {
				b.Fatal(err)
			}
			if _, _, err := g2.Energy(context.Background()); err != nil {
				b.Fatal(err)
			}
			virtual += sim.Elapsed() - t0
			sim.Stop()
			tb.Close()
		}
		b.ReportMetric(float64(virtual.Milliseconds())/float64(b.N), "virtual-ms/recovery")
	})
}
